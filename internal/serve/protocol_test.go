package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"anc"
	"anc/internal/obs/trace"
)

// sampleRequests covers every op with representative field values.
func sampleRequests() []*Request {
	return []*Request{
		{Op: OpActivateBatch, ID: 1, Batch: []anc.Activation{
			{U: 0, V: 1, T: 1.5},
			{U: 4, V: 5, T: 2.25},
			{U: 9, V: 8, T: math.Pi},
		}},
		{Op: OpClusters, ID: 2, Level: 3},
		{Op: OpEvenClusters, ID: 3, Level: 1},
		{Op: OpClusterOf, ID: 4, Node: 7, Level: 2},
		{Op: OpSmallestClusterOf, ID: 5, Node: 9},
		{Op: OpEstimateDistance, ID: 6, U: 0, V: 9},
		{Op: OpEstimateAttraction, ID: 7, U: 4, V: 5},
		{Op: OpStats, ID: 8},
		{Op: OpWatch, ID: 9, Node: 3},
		{Op: OpUnwatch, ID: 10, Node: 3},
		{Op: OpDrainEvents, ID: 11},
		{Op: OpViewOpen, ID: 12},
		{Op: OpViewZoomIn, ID: 13, View: 1},
		{Op: OpViewZoomOut, ID: 14, View: 1},
		{Op: OpViewClusters, ID: 15, View: 1},
		{Op: OpViewClusterOf, ID: 16, View: 1, Node: 6},
		{Op: OpViewClose, ID: 17, View: 1},
		{Op: OpReplSubscribe, ID: 18, From: 123456},
		{Op: OpReplStatus, ID: 19},
		{Op: OpPromote, ID: 20},
		{Op: OpTieRank, ID: 21, Level: -1, K: 10},
		{Op: OpTieRank, ID: 22, Level: 2, K: 3},
		{Op: OpEvolution, ID: 23, From: 42},
		{Op: OpTraces, ID: 24, From: 0, K: 0},
		{Op: OpTraces, ID: 25, From: 0xdeadbeefcafef00d, K: 1},
		{Op: OpStats, ID: 26, Trace: trace.Context{TraceID: 0x1122334455667788, SpanID: 0x99aabbccddeeff00}},
		{Op: OpActivateBatch, ID: 27, Batch: []anc.Activation{{U: 1, V: 2, T: 3.5}},
			Trace: trace.Context{TraceID: 7, SpanID: 9}},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range sampleRequests() {
		payload := EncodeRequest(req)
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("op %d: decode: %v", req.Op, err)
		}
		// Re-encoding the decoded request must be byte-identical: the
		// decoder is strict, so the encoding is canonical.
		if !bytes.Equal(EncodeRequest(got), payload) {
			t.Fatalf("op %d: re-encode differs", req.Op)
		}
		if got.Op != req.Op || got.ID != req.ID {
			t.Fatalf("op %d: header mismatch: %+v", req.Op, got)
		}
	}
}

func TestDecodeRequestRejects(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"short header", []byte{OpStats, 0, 0}},
		{"zero op", append([]byte{0}, make([]byte, 8)...)},
		{"unknown op", append([]byte{opMax}, make([]byte, 8)...)},
		{"trailing bytes", append(EncodeRequest(&Request{Op: OpStats, ID: 1}), 0)},
		{"short body", EncodeRequest(&Request{Op: OpClusters, ID: 1})[:10]},
		{"batch count lies", func() []byte {
			b := EncodeRequest(&Request{Op: OpActivateBatch, ID: 1})
			binary.LittleEndian.PutUint32(b[9:13], 1<<30) // announce 2^30 records, carry none
			return b
		}()},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.payload); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

// sampleResponses pairs each op with a representative OK response.
func sampleResponses() []struct {
	Op   uint8
	Resp *Response
} {
	return []struct {
		Op   uint8
		Resp *Response
	}{
		{OpActivateBatch, &Response{ID: 1, Accepted: 64}},
		{OpClusters, &Response{ID: 2, Clusters: [][]int{{0, 1, 2}, {3}, {4, 5}}}},
		{OpEvenClusters, &Response{ID: 3, Clusters: [][]int{{9, 8, 7, 6}}}},
		{OpViewClusters, &Response{ID: 4, Clusters: [][]int{}}},
		{OpClusterOf, &Response{ID: 5, Members: []int{0, 4, 2}}},
		{OpSmallestClusterOf, &Response{ID: 6, Members: []int{9}}},
		{OpViewClusterOf, &Response{ID: 7, Members: []int{}}},
		{OpEstimateDistance, &Response{ID: 8, Value: 0.625}},
		{OpEstimateAttraction, &Response{ID: 9, Value: math.Inf(1)}},
		{OpStats, &Response{ID: 10, Stats: StatsReply{
			Nodes: 10, Edges: 21, Levels: 4, SqrtLevel: 2,
			Activations: 12345, Now: 98.5, Inflight: 3, Queued: 7, Draining: true,
			Role: RoleFollower, ReplLagFrames: 17, ReplLagSeconds: 0.25,
		}}},
		{OpWatch, &Response{ID: 11}},
		{OpUnwatch, &Response{ID: 12}},
		{OpDrainEvents, &Response{ID: 13, Dropped: 2, Events: []anc.ClusterEvent{
			{Node: 1, Other: 2, Level: 3, Joined: true, Time: 4.5},
			{Node: 6, Other: 7, Level: 1, Joined: false, Time: 9.75},
		}}},
		{OpViewOpen, &Response{ID: 14, View: 3, Level: 2}},
		{OpViewZoomIn, &Response{ID: 15, Moved: true, Level: 3}},
		{OpViewZoomOut, &Response{ID: 16, Moved: false, Level: 1}},
		{OpViewClose, &Response{ID: 17}},
		{OpReplSubscribe, &Response{ID: 18}},
		{OpReplStatus, &Response{ID: 19, Repl: ReplStatus{
			Role: RolePrimary, Next: 1000, PrimaryNext: 1000, Activations: 9999,
			Now: 42.5, PrimaryNow: 42.5, Reconnects: 3, LastReconnect: "stall",
		}}},
		{OpPromote, &Response{ID: 20}},
		{OpTieRank, &Response{ID: 21, Rank: anc.TieRankResult{
			Global: []anc.RankEntry{{Node: 3, Score: 0.75}, {Node: 0, Score: 0.5}},
			Level:  -1, Iters: 17, Converged: true, Now: 12.5,
		}}},
		{OpTieRank, &Response{ID: 22, Rank: anc.TieRankResult{
			Global: []anc.RankEntry{{Node: 1, Score: 0.9}},
			Level:  2,
			Clusters: [][]anc.RankEntry{
				{{Node: 1, Score: 0.9}, {Node: 2, Score: 0.1}},
				{},
			},
			Iters: 100, Converged: false, Now: 0,
		}}},
		{OpEvolution, &Response{ID: 23, Seq: 6, Dropped: 2, Evo: []anc.EvolutionEvent{
			{Seq: 5, Type: anc.EvolutionSplit, Level: 2, Node: 0, Size: 2, PrevSize: 8, Time: 3.5},
			{Seq: 6, Type: anc.EvolutionBirth, Level: 2, Node: 9, Size: 4, PrevSize: 0, Time: 3.5},
		}}},
		{OpTraces, &Response{ID: 24, Raw: []byte(`{"traces":[]}`)}},
		{OpTraces, &Response{ID: 25, Raw: []byte{}}},
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, tc := range sampleResponses() {
		payload := EncodeResponse(tc.Op, tc.Resp)
		got, err := DecodeResponse(tc.Op, payload)
		if err != nil {
			t.Fatalf("op %d: decode: %v", tc.Op, err)
		}
		if got.ID != tc.Resp.ID {
			t.Fatalf("op %d: id %d, want %d", tc.Op, got.ID, tc.Resp.ID)
		}
		if !bytes.Equal(EncodeResponse(tc.Op, got), payload) {
			t.Fatalf("op %d: re-encode differs", tc.Op)
		}
	}
}

func TestErrorReplyRoundTrip(t *testing.T) {
	payload := EncodeError(42, ErrCodeOverloaded, "queue full")
	// Error replies decode regardless of the request op.
	for _, op := range []uint8{OpActivateBatch, OpStats, OpViewClusters} {
		resp, err := DecodeResponse(op, payload)
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if resp.ID != 42 || resp.Err == nil || resp.Err.Code != ErrCodeOverloaded ||
			resp.Err.Msg != "queue full" {
			t.Fatalf("op %d: bad error reply %+v", op, resp)
		}
		if !strings.Contains(resp.Err.Error(), "overloaded") {
			t.Fatalf("error text %q lacks code name", resp.Err.Error())
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := EncodeRequest(&Request{Op: OpStats, ID: 99})
	if err := writeFrame(bufio.NewWriter(&buf), payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("frame payload mutated in transit")
	}
}

func TestReadFrameRejects(t *testing.T) {
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := writeFrame(bufio.NewWriter(&buf), payload); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	good := frame([]byte("hello"))

	corruptCRC := bytes.Clone(good)
	corruptCRC[len(corruptCRC)-1] ^= 0x01
	zeroLen := make([]byte, frameHeaderSize)
	huge := bytes.Clone(good)
	binary.LittleEndian.PutUint32(huge[0:4], uint32(DefaultMaxFrame)+1)

	cases := []struct {
		name string
		raw  []byte
		code uint8
	}{
		{"crc mismatch", corruptCRC, ErrCodeBadFrame},
		{"zero length", zeroLen, ErrCodeBadFrame},
		{"oversized", huge, ErrCodeFrameTooBig},
	}
	for _, tc := range cases {
		_, err := readFrame(bytes.NewReader(tc.raw), DefaultMaxFrame)
		fe, ok := err.(*frameError)
		if !ok {
			t.Fatalf("%s: got %v, want *frameError", tc.name, err)
		}
		if fe.code != tc.code {
			t.Fatalf("%s: code %d, want %d", tc.name, fe.code, tc.code)
		}
	}
}

func TestPreamble(t *testing.T) {
	var buf bytes.Buffer
	if err := writePreamble(&buf, Version); err != nil {
		t.Fatal(err)
	}
	ver, err := readPreamble(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ver != Version {
		t.Fatalf("read version %d, want %d", ver, Version)
	}
	bad := bytes.Clone(buf.Bytes())
	bad[0] = 'X'
	if _, err := readPreamble(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// A peer announcing a version above ours is fine — both sides settle
	// on the minimum via negotiate — but one below MinVersion is not.
	future := bytes.Clone(buf.Bytes())
	binary.LittleEndian.PutUint16(future[4:6], Version+1)
	ver, err = readPreamble(bytes.NewReader(future))
	if err != nil {
		t.Fatalf("future version rejected: %v", err)
	}
	if ver != Version+1 {
		t.Fatalf("read version %d, want %d", ver, Version+1)
	}
	if got := negotiate(Version + 1); got != Version {
		t.Fatalf("negotiate(%d) = %d, want %d", Version+1, got, Version)
	}
	if got := negotiate(MinVersion); got != MinVersion {
		t.Fatalf("negotiate(%d) = %d, want %d", MinVersion, got, MinVersion)
	}
	ancient := bytes.Clone(buf.Bytes())
	binary.LittleEndian.PutUint16(ancient[4:6], MinVersion-1)
	if _, err := readPreamble(bytes.NewReader(ancient)); err == nil {
		t.Fatal("pre-MinVersion peer accepted")
	}
}

// FuzzDecodeRequest feeds arbitrary payloads through the request decoder.
// Anything that decodes must re-encode byte-identically: the strict decoder
// admits only canonical encodings, so decode∘encode is the identity on its
// accepted set.
func FuzzDecodeRequest(f *testing.F) {
	for _, req := range sampleRequests() {
		f.Add(EncodeRequest(req))
	}
	f.Add([]byte{})
	f.Add([]byte{OpActivateBatch, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		if re := EncodeRequest(req); !bytes.Equal(re, payload) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", payload, re)
		}
	})
}

// FuzzTieRank feeds arbitrary payloads through the OpTieRank decoders on
// both sides of the wire: a request decode must re-encode byte-identically
// (the request encoding is canonical), and a response decode must survive
// a canonical re-encode fixed point like FuzzDecodeResponse.
func FuzzTieRank(f *testing.F) {
	for _, req := range sampleRequests() {
		if req.Op == OpTieRank {
			f.Add(EncodeRequest(req))
		}
	}
	for _, tc := range sampleResponses() {
		if tc.Op == OpTieRank {
			f.Add(EncodeResponse(tc.Op, tc.Resp))
		}
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		if req, err := DecodeRequest(payload); err == nil && req.Op == OpTieRank {
			if re := EncodeRequest(req); !bytes.Equal(re, payload) {
				t.Fatalf("request decode/encode not canonical:\n in  %x\n out %x", payload, re)
			}
		}
		resp, err := DecodeResponse(OpTieRank, payload)
		if err != nil || resp.Err != nil {
			return
		}
		canon := EncodeResponse(OpTieRank, resp)
		again, err := DecodeResponse(OpTieRank, canon)
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		if !bytes.Equal(EncodeResponse(OpTieRank, again), canon) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}

// FuzzEvolution is FuzzTieRank for OpEvolution payloads.
func FuzzEvolution(f *testing.F) {
	for _, req := range sampleRequests() {
		if req.Op == OpEvolution {
			f.Add(EncodeRequest(req))
		}
	}
	for _, tc := range sampleResponses() {
		if tc.Op == OpEvolution {
			f.Add(EncodeResponse(tc.Op, tc.Resp))
		}
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		if req, err := DecodeRequest(payload); err == nil && req.Op == OpEvolution {
			if re := EncodeRequest(req); !bytes.Equal(re, payload) {
				t.Fatalf("request decode/encode not canonical:\n in  %x\n out %x", payload, re)
			}
		}
		resp, err := DecodeResponse(OpEvolution, payload)
		if err != nil || resp.Err != nil {
			return
		}
		canon := EncodeResponse(OpEvolution, resp)
		again, err := DecodeResponse(OpEvolution, canon)
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		if !bytes.Equal(EncodeResponse(OpEvolution, again), canon) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}

// FuzzDecodeResponse feeds arbitrary payloads through the response decoder
// for every op. A successful decode must survive a canonical re-encode and
// re-decode (bools on the wire may be non-canonical, so the first re-encode
// need not match the input bytes — but the canonical form must be a fixed
// point).
func FuzzDecodeResponse(f *testing.F) {
	for _, tc := range sampleResponses() {
		f.Add(tc.Op, EncodeResponse(tc.Op, tc.Resp))
	}
	f.Add(OpStats, EncodeError(1, ErrCodeDeadline, "late"))
	f.Fuzz(func(t *testing.T, op uint8, payload []byte) {
		resp, err := DecodeResponse(op, payload)
		if err != nil || resp.Err != nil {
			return
		}
		canon := EncodeResponse(op, resp)
		again, err := DecodeResponse(op, canon)
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		if !bytes.Equal(EncodeResponse(op, again), canon) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}
