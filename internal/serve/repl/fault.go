package repl

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedCut is returned by a FaultConn once its truncation point has
// been reached: the connection is considered dead mid-frame, the way a
// partition or a crashed peer tears a TCP stream.
var ErrInjectedCut = errors.New("repl: injected connection cut")

// FaultConfig tunes a FaultConn. Probabilities are per received frame;
// zero values inject nothing of that class.
type FaultConfig struct {
	// Seed feeds the injector's private RNG so every chaos run is
	// reproducible.
	Seed int64
	// DropProb silently discards a frame — the follower sees a gap.
	DropProb float64
	// DupProb delivers a frame twice — the follower must deduplicate.
	DupProb float64
	// DelayProb holds a frame back for a random slice of MaxDelay before
	// delivery — reordering pressure on liveness deadlines.
	DelayProb float64
	// MaxDelay bounds an injected delay (default 20ms).
	MaxDelay time.Duration
	// CorruptProb flips one payload byte — the CRC must catch it.
	CorruptProb float64
	// TruncateAfter, when positive, cuts the connection mid-frame after
	// that many frames have been delivered: the peer receives a partial
	// frame and then ErrInjectedCut.
	TruncateAfter int
}

// FaultConn wraps a replication connection with frame-aware fault
// injection on the read path — the network counterpart of the WAL's
// write-path Fault harness. It understands the stream's framing (the
// 8-byte preamble passes through untouched, then length+CRC frames), so
// each fault lands on a whole protocol frame: drops, duplicates, delays,
// a flipped payload byte, or a mid-frame cut. Writes pass through
// unmodified — the injector models what the subscriber RECEIVES, which
// is where every replication failure path lives.
//
// Interpose it via Config.Dial:
//
//	cfg.Dial = func(addr string) (net.Conn, error) {
//		c, err := net.Dial("tcp", addr)
//		if err != nil { return nil, err }
//		return repl.NewFaultConn(c, faultCfg), nil
//	}
type FaultConn struct {
	net.Conn
	cfg FaultConfig

	mu        sync.Mutex
	rng       *rand.Rand
	preambled int    // preamble bytes already passed through
	staged    []byte // faulted bytes ready for delivery
	delivered int    // whole frames delivered, for TruncateAfter
	cut       bool
}

// NewFaultConn wraps conn with fault injection per cfg.
func NewFaultConn(conn net.Conn, cfg FaultConfig) *FaultConn {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 20 * time.Millisecond
	}
	return &FaultConn{Conn: conn, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

const preambleLen = 8
const faultFrameHeader = 8

// Read delivers staged bytes, staging the next whole frame (with its
// faults applied) whenever the stage runs dry.
func (f *FaultConn) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.staged) == 0 {
		if f.cut {
			return 0, ErrInjectedCut
		}
		// Test-harness fault injector: the conn has a single reader and the
		// staged read is the point of the lock.
		if err := f.stage(); err != nil { //anclint:ignore lockorder single-reader test harness; staging under the lock is the design
			return 0, err
		}
	}
	n := copy(p, f.staged)
	f.staged = f.staged[n:]
	return n, nil
}

// stage reads one unit from the real connection — the preamble first,
// then whole frames — and appends its (possibly faulted) bytes to the
// stage. Called with f.mu held.
func (f *FaultConn) stage() error {
	if f.preambled < preambleLen {
		buf := make([]byte, preambleLen-f.preambled)
		n, err := f.Conn.Read(buf)
		f.preambled += n
		f.staged = append(f.staged, buf[:n]...)
		return err
	}
	frame, err := f.readWholeFrame()
	if err != nil {
		return err
	}
	f.delivered++
	if f.cfg.TruncateAfter > 0 && f.delivered > f.cfg.TruncateAfter {
		// Deliver a partial frame, then the cut: the reader's CRC check
		// never even runs — io.ReadFull fails like a torn TCP stream.
		f.cut = true
		if len(frame) > 1 {
			f.staged = append(f.staged, frame[:len(frame)/2]...)
		}
		return nil
	}
	roll := f.rng.Float64()
	switch {
	case roll < f.cfg.DropProb:
		return nil // dropped: stage nothing, read the next frame
	case roll < f.cfg.DropProb+f.cfg.DupProb:
		f.staged = append(f.staged, frame...)
		f.staged = append(f.staged, frame...)
	case roll < f.cfg.DropProb+f.cfg.DupProb+f.cfg.DelayProb:
		// A real delay, not a reorder: the stream stalls the way a
		// congested link does, pushing on the liveness deadline.
		delay := time.Duration(f.rng.Int63n(int64(f.cfg.MaxDelay) + 1))
		f.mu.Unlock()
		time.Sleep(delay)
		f.mu.Lock()
		f.staged = append(f.staged, frame...)
	case roll < f.cfg.DropProb+f.cfg.DupProb+f.cfg.DelayProb+f.cfg.CorruptProb:
		if len(frame) > faultFrameHeader {
			i := faultFrameHeader + f.rng.Intn(len(frame)-faultFrameHeader)
			frame[i] ^= 0x40
		}
		f.staged = append(f.staged, frame...)
	default:
		f.staged = append(f.staged, frame...)
	}
	return nil
}

// readWholeFrame reads one length+CRC frame (header + payload) off the
// real connection.
func (f *FaultConn) readWholeFrame() ([]byte, error) {
	hdr := make([]byte, faultFrameHeader)
	if err := f.readFull(hdr); err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	frame := make([]byte, faultFrameHeader+int(length))
	copy(frame, hdr)
	if err := f.readFull(frame[faultFrameHeader:]); err != nil {
		return nil, err
	}
	return frame, nil
}

func (f *FaultConn) readFull(p []byte) error {
	for off := 0; off < len(p); {
		n, err := f.Conn.Read(p[off:])
		off += n
		if err != nil {
			return err
		}
	}
	return nil
}
