package repl

import (
	"anc/internal/obs"
	"anc/internal/serve"
)

// metrics is the nil-safe handle bundle for the anc_repl_* families,
// mirroring the serving layer's pattern: a nil *metrics (observability
// off) makes every method a no-op.
type metrics struct {
	appliedC    *obs.Counter
	duplicatesC *obs.Counter
	streamedC   *obs.Counter
	snapshotsC  *obs.Counter
	restoresC   *obs.Counter
	reconnectsC *obs.Counter
}

func newMetrics(r *obs.Registry, n *Node) *metrics {
	if r == nil {
		return nil
	}
	m := &metrics{
		appliedC: r.Counter("anc_repl_applied_frames_total",
			"Replicated WAL frames applied to the local log."),
		duplicatesC: r.Counter("anc_repl_duplicate_frames_total",
			"Shipped frames skipped as already-applied duplicates (reconnect overlap)."),
		streamedC: r.Counter("anc_repl_streamed_frames_total",
			"WAL frames shipped to subscribers."),
		snapshotsC: r.Counter("anc_repl_snapshots_shipped_total",
			"Checkpoint snapshots shipped to bootstrap lagging subscribers."),
		restoresC: r.Counter("anc_repl_snapshot_restores_total",
			"Local states rebuilt from a shipped snapshot."),
		reconnectsC: r.Counter("anc_repl_reconnects_total",
			"Replication session re-establishments."),
	}
	r.GaugeFunc("anc_repl_role",
		"Replication role: 0 none, 1 primary, 2 follower.",
		func() float64 { return float64(n.Role()) })
	r.GaugeFunc("anc_repl_subscribers",
		"Open replication subscriptions on this node.",
		func() float64 { return float64(n.subscribers.Load()) })
	r.GaugeFunc("anc_repl_lag_frames",
		"Committed primary frames not yet in the local log (0 on the primary).",
		func() float64 {
			st := n.Status()
			if st.Role != serve.RoleFollower {
				return 0
			}
			return float64(st.LagFrames())
		})
	r.GaugeFunc("anc_repl_last_message_age_seconds",
		"Wall-clock age of the last replication message (0 on the primary).",
		func() float64 { return n.Status().LagSeconds })
	return m
}

func (m *metrics) subscribed() {}

func (m *metrics) applied() {
	if m != nil {
		m.appliedC.Inc()
	}
}

func (m *metrics) duplicate() {
	if m != nil {
		m.duplicatesC.Inc()
	}
}

func (m *metrics) streamed(frames int) {
	if m != nil {
		m.streamedC.Add(uint64(frames))
	}
}

func (m *metrics) snapshotShipped() {
	if m != nil {
		m.snapshotsC.Inc()
	}
}

func (m *metrics) restored() {
	if m != nil {
		m.restoresC.Inc()
	}
}

func (m *metrics) reconnected() {
	if m != nil {
		m.reconnectsC.Inc()
	}
}
