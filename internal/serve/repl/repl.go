// Package repl is the WAL-shipping replication subsystem: a primary
// serves its committed write-ahead-log frames over the serve protocol's
// replication ops, and followers replay them through the exact machinery
// local recovery uses, so a follower's durable directory — and therefore
// its Save bytes — converge to the primary's.
//
// # Topology
//
// One Node wraps one DurableNetwork and plays one of two roles. A
// primary (Config.Upstream == "") accepts ingest and answers
// OpReplSubscribe by streaming frames straight from its durable
// directory: the subscriber names its next frame index, and the primary
// ships either the WAL tail from that index or — when the index has
// fallen below the retained segments — the newest on-disk checkpoint
// followed by the tail from the checkpoint's index. A follower
// (Config.Upstream set) dials its upstream, subscribes from its own log
// end, applies every received frame byte-identically via ApplyFrame, and
// refuses local ingest with ErrCodeReadOnly until promoted.
//
// # Staleness
//
// A follower is never wrong, only late: replay preserves the activation
// order, so at every moment the follower serves the well-defined decayed
// state of some prefix of the primary's history (the tie-decay
// formulation makes that state meaningful on its own). Staleness is
// reported as frames (primary's cursor minus local cursor) and as the
// wall-clock age of the last replication message, via Status, OpStats
// and the anc_repl_* metrics.
//
// # Failure model
//
// Sessions end five ways, each with a recorded cause: "dial" (upstream
// unreachable), "drain" (upstream shut down gracefully and said so with
// a typed ErrCodeShuttingDown frame), "crash" (connection died without
// the drain frame), "stall" (no message within the liveness window), and
// "gap"/"protocol" (stream state diverged — resubscribe from scratch).
// The follower reconnects with capped exponential backoff plus seeded
// jitter, resetting after any session that subscribed successfully. When
// Config.PromoteAfter is set and the upstream stays lost that long, the
// follower promotes itself: it seals its log with an fsync and starts
// accepting writes — failover by promotion.
package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"anc"
	"anc/internal/obs"
	"anc/internal/obs/trace"
	"anc/internal/serve"
	"anc/internal/serve/backoff"
	"anc/internal/wal"
)

// Config tunes a replication node. Only Durable is required for a
// follower that may bootstrap from a shipped snapshot; everything else
// has serving-grade defaults.
type Config struct {
	// Upstream is the primary's address. Empty means this node IS the
	// primary: it serves subscriptions and never dials out.
	Upstream string
	// Dial opens the upstream connection (default: TCP with a 5s
	// timeout). Tests interpose FaultConn here.
	Dial func(addr string) (net.Conn, error)
	// Durable rebuilds the follower's DurableNetwork after a snapshot
	// bootstrap — pass the same config the network was opened with.
	Durable anc.DurableConfig
	// PromoteAfter, when positive, self-promotes a follower that has been
	// without its upstream for this long. 0 never self-promotes.
	PromoteAfter time.Duration
	// ReconnectMin/ReconnectMax bound the reconnect backoff
	// (defaults 50ms / 5s).
	ReconnectMin, ReconnectMax time.Duration
	// Heartbeat is the primary's status-push period on an idle stream
	// (default 500ms); a follower declares the stream stalled after
	// 4×Heartbeat without any message.
	Heartbeat time.Duration
	// ChunkFrames caps frames per ReplFrames push (default 256);
	// SnapshotChunk caps bytes per ReplSnapshot push (default 64 KiB).
	ChunkFrames   int
	SnapshotChunk int
	// MaxFrame bounds stream frames, matching the serving side (default
	// serve.DefaultMaxFrame).
	MaxFrame int
	// Seed feeds the reconnect-backoff jitter (and nothing else) via
	// internal/serve/backoff, keeping the package's behavior
	// reproducible under test. Zero draws a wall-clock seed.
	Seed int64
	// Logf, when non-nil, receives replication log lines (leveled key=value
	// format, sys=repl).
	Logf func(format string, args ...interface{})
	// Obs, when non-nil, attaches the anc_repl_* metric families.
	Obs *obs.Registry
	// Tracer, when non-nil, records a follower-side "repl.apply" span for
	// every replicated frame that carries a trace ID — the frames' IDs are
	// shipped by v3 primaries — so one distributed trace covers the
	// primary's ingest and each follower's apply.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Dial == nil {
		c.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = 50 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 5 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.ChunkFrames <= 0 {
		c.ChunkFrames = 256
	}
	if c.SnapshotChunk <= 0 {
		c.SnapshotChunk = 64 << 10
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = serve.DefaultMaxFrame
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// chunkBytes caps the WAL payload bytes in one ReplFrames push; with the
// per-frame ceiling of ~1 MiB the whole push stays well under the 4 MiB
// frame bound.
const chunkBytes = 1 << 20

// Node is one replication participant: it wraps a DurableNetwork,
// implements serve.Backend (so a Server can front it directly),
// serve.Replicator (the replication ops) and the durable surface
// (Checkpoint/Close) the server's shutdown paths use.
//
// The wrapped network is swappable — a follower bootstrapping from a
// shipped snapshot atomically replaces it — so every access goes through
// the node's own read lock.
type Node struct {
	cfg Config

	mu sync.RWMutex
	d  *anc.DurableNetwork

	follower bool
	readOnly atomic.Bool
	promoted chan struct{}
	promOnce sync.Once

	stopCh   chan struct{}
	stopOnce sync.Once
	doneCh   chan struct{}
	started  atomic.Bool

	// Follower session health, guarded by hmu: the follower loop writes,
	// Status reads.
	hmu         sync.Mutex
	primaryNext uint64
	primaryNow  float64
	lastMsg     time.Time
	reconnects  uint32
	lastCause   string

	subscribers atomic.Int32
	met         *metrics
	log         *obs.Logger
}

// New builds a replication node over d. With cfg.Upstream empty the node
// is a primary; otherwise it is a read-only follower — call Start to
// launch its replication loop.
func New(d *anc.DurableNetwork, cfg Config) *Node {
	// Build the leveled logger from the raw sink: a nil Logf yields a nil
	// logger, which discards without formatting — cheaper than logging
	// through withDefaults' no-op closure.
	log := obs.NewLogger("repl", obs.LevelInfo, cfg.Logf)
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:      cfg,
		d:        d,
		follower: cfg.Upstream != "",
		promoted: make(chan struct{}),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
		log:      log,
	}
	n.readOnly.Store(n.follower)
	n.met = newMetrics(cfg.Obs, n)
	return n
}

// Start launches a follower's replication loop; on a primary it is a
// no-op. It may be called once.
func (n *Node) Start() {
	if !n.follower || !n.started.CompareAndSwap(false, true) {
		return
	}
	go n.run()
}

// Retarget points the node at a new upstream and (re)starts its
// replication loop — the remaining follower's "follow the new primary"
// step after a failover. A still-running loop is stopped first; the node
// returns to read-only until its next promotion.
func (n *Node) Retarget(addr string) {
	n.stopOnce.Do(func() { close(n.stopCh) })
	<-n.doneOrNothing()
	n.cfg.Upstream = addr
	n.follower = true
	n.readOnly.Store(true)
	n.promoted = make(chan struct{})
	n.promOnce = sync.Once{}
	n.stopCh = make(chan struct{})
	n.stopOnce = sync.Once{}
	n.doneCh = make(chan struct{})
	n.started.Store(true)
	go n.run()
}

// doneOrNothing returns doneCh when a loop ever started, or a closed
// channel otherwise, so Retarget never blocks on a fresh node.
func (n *Node) doneOrNothing() <-chan struct{} {
	if n.started.Load() {
		return n.doneCh
	}
	ch := make(chan struct{})
	close(ch)
	return ch
}

// durable returns the current wrapped network under the node lock.
func (n *Node) durable() *anc.DurableNetwork {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.d
}

// Durable returns the currently wrapped network. A follower that
// bootstraps from a shipped snapshot swaps networks, so callers must not
// cache the result across replication events.
func (n *Node) Durable() *anc.DurableNetwork { return n.durable() }

// Close stops the replication loop (if any) and closes the wrapped
// network. It satisfies the server's durable-backend surface, so a
// Server Shutdown/Kill over this node tears replication down too.
func (n *Node) Close() error {
	n.stopOnce.Do(func() { close(n.stopCh) })
	if n.started.Load() {
		<-n.doneCh
	}
	return n.durable().Close()
}

// Checkpoint checkpoints the wrapped network.
func (n *Node) Checkpoint() error { return n.durable().Checkpoint() }

// ---- serve.Backend ------------------------------------------------------

// ActivateBatch applies a batch locally — refused while the node is an
// unpromoted follower, with the typed read-only error the serving layer
// forwards to clients.
func (n *Node) ActivateBatch(batch []anc.Activation) error {
	if n.readOnly.Load() {
		return &serve.WireError{Code: serve.ErrCodeReadOnly,
			Msg: "follower is read-only; ingest at the primary"}
	}
	return n.durable().ActivateBatch(batch)
}

// ActivateBatchTraced implements serve.TracedBackend: a traced ingest
// batch flows through the durable network's traced path, so the request
// span picks up the WAL/fsync/repair children. The read-only refusal
// matches ActivateBatch.
func (n *Node) ActivateBatchTraced(batch []anc.Activation, sp trace.SpanHandle) error {
	if n.readOnly.Load() {
		return &serve.WireError{Code: serve.ErrCodeReadOnly,
			Msg: "follower is read-only; ingest at the primary"}
	}
	return n.durable().ActivateBatchTraced(batch, sp)
}

func (n *Node) Clusters(level int) [][]int                { return n.durable().Clusters(level) }
func (n *Node) EvenClusters(level int) [][]int            { return n.durable().EvenClusters(level) }
func (n *Node) ClusterOf(v, level int) []int              { return n.durable().ClusterOf(v, level) }
func (n *Node) SmallestClusterOf(v int) []int             { return n.durable().SmallestClusterOf(v) }
func (n *Node) EstimateDistance(u, v int) float64         { return n.durable().EstimateDistance(u, v) }
func (n *Node) EstimateAttraction(u, v int) float64       { return n.durable().EstimateAttraction(u, v) }
func (n *Node) Watch(v int)                               { n.durable().Watch(v) }
func (n *Node) Unwatch(v int)                             { n.durable().Unwatch(v) }
func (n *Node) DrainEvents() ([]anc.ClusterEvent, uint64) { return n.durable().DrainEvents() }
func (n *Node) TieRank(level, k int) anc.TieRankResult    { return n.durable().TieRank(level, k) }
func (n *Node) Evolution(since uint64) ([]anc.EvolutionEvent, uint64, uint64) {
	return n.durable().Evolution(since)
}
func (n *Node) Stats() anc.Stats { return n.durable().Stats() }

// ---- serve.Replicator ---------------------------------------------------

// ReadOnly reports whether local ingest must be refused.
func (n *Node) ReadOnly() bool { return n.readOnly.Load() }

// Role returns the node's current replication role.
func (n *Node) Role() uint8 {
	if n.follower && n.readOnly.Load() {
		return serve.RoleFollower
	}
	return serve.RolePrimary
}

// Promote seals a follower's log (fsync) and re-enables ingest; its
// replication loop exits on its next wakeup. On a primary it is a
// no-op. Promotion is idempotent and one-way — a promoted node never
// silently re-follows (use Retarget for that, deliberately).
func (n *Node) Promote() error {
	if !n.follower {
		return nil
	}
	var err error
	n.promOnce.Do(func() {
		err = n.durable().Sync()
		n.readOnly.Store(false)
		close(n.promoted)
		n.log.Info("promoted; log sealed, accepting writes")
	})
	return err
}

func (n *Node) isPromoted() bool {
	select {
	case <-n.promoted:
		return true
	default:
		return false
	}
}

func (n *Node) isStopped() bool {
	select {
	case <-n.stopCh:
		return true
	default:
		return false
	}
}

// Status reports replication health for OpReplStatus, OpStats and the
// gauges.
func (n *Node) Status() serve.ReplStatus {
	d := n.durable()
	bs := d.Stats()
	st := serve.ReplStatus{
		Role:        n.Role(),
		Next:        d.LoggedActivations(),
		Activations: bs.Activations,
		Now:         bs.Now,
	}
	if st.Role == serve.RolePrimary {
		st.PrimaryNext, st.PrimaryNow = st.Next, st.Now
	}
	n.hmu.Lock()
	if st.Role == serve.RoleFollower {
		st.PrimaryNext, st.PrimaryNow = n.primaryNext, n.primaryNow
		if !n.lastMsg.IsZero() {
			st.LagSeconds = time.Since(n.lastMsg).Seconds()
		}
	}
	st.Reconnects, st.LastReconnect = n.reconnects, n.lastCause
	n.hmu.Unlock()
	if st.PrimaryNext < st.Next {
		// A promoted ex-follower has moved past its dead upstream's last
		// known cursor; it is not "negatively lagged".
		st.PrimaryNext = st.Next
	}
	return st
}

// errStopTail is the sentinel the tail reader returns to stop wal.Replay
// once a chunk is full.
var errStopTail = errors.New("repl: chunk full")

// Stream implements the primary side of one subscription (also usable on
// an unpromoted follower for chained topologies — it serves whatever its
// local log holds). When traced is set — the subscriber negotiated
// protocol v3 — each shipped chunk carries the trace IDs its frames were
// appended under, so follower applies stitch into the primary's traces;
// older subscribers get identical frames without the trace section.
func (n *Node) Stream(from uint64, traced bool, send func(payload []byte) error, stop <-chan struct{}) error {
	n.subscribers.Add(1)
	n.met.subscribed()
	defer n.subscribers.Add(-1)

	d := n.durable()
	// Bootstrap: a subscriber below the retained tail gets the newest
	// checkpoint, then the tail from the checkpoint's index.
	earliest, ok, err := wal.EarliestIndex(d.Dir())
	if err != nil {
		return err
	}
	cur := from
	if !ok || from < earliest {
		idx, path, ok, err := d.NewestCheckpoint()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("repl: no checkpoint to bootstrap subscriber at %d", from)
		}
		snap, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for off := 0; ; off += n.cfg.SnapshotChunk {
			end := off + n.cfg.SnapshotChunk
			if end > len(snap) {
				end = len(snap)
			}
			msg := &serve.ReplSnapshot{Index: idx, Total: uint64(len(snap)),
				Off: uint64(off), Data: snap[off:end]}
			if err := send(serve.EncodeReplSnapshot(msg)); err != nil {
				return err
			}
			if end == len(snap) {
				break
			}
		}
		n.met.snapshotShipped()
		cur = idx
	}

	// Tell the subscriber where the primary stands before the first tail
	// chunk, so lag is observable immediately.
	if err := send(serve.EncodeReplStatus(&serve.ReplStatus{
		Role: n.Role(), Next: d.LoggedActivations(), PrimaryNext: d.LoggedActivations(),
	})); err != nil {
		return err
	}

	heartbeat := time.NewTicker(n.cfg.Heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		next, wake := d.FrameSignal()
		if cur < next {
			batch := &serve.ReplFrames{First: cur}
			var bytes int
			anyTraced := false
			_, err := wal.Replay(d.Dir(), cur, func(idx uint64, payload []byte) error {
				if idx != cur+uint64(len(batch.Frames)) {
					return fmt.Errorf("repl: tail gap: frame %d after %d", idx, cur+uint64(len(batch.Frames)))
				}
				if idx >= next {
					return errStopTail
				}
				// Replay reuses its payload buffer between frames — copy.
				cp := make([]byte, len(payload))
				copy(cp, payload)
				batch.Frames = append(batch.Frames, cp)
				bytes += len(cp)
				if traced {
					tid := d.TraceOf(idx)
					batch.Traces = append(batch.Traces, tid)
					anyTraced = anyTraced || tid != 0
				}
				if len(batch.Frames) >= n.cfg.ChunkFrames || bytes >= chunkBytes {
					return errStopTail
				}
				return nil
			})
			if err != nil && !errors.Is(err, errStopTail) {
				return err
			}
			if !anyTraced {
				// All-zero trace sections carry no information — ship the
				// plain chunk and save 8 bytes per frame.
				batch.Traces = nil
			}
			if len(batch.Frames) == 0 {
				// The tail below next vanished underneath us (checkpoint
				// truncation racing a very slow subscriber): the session
				// cannot continue contiguously.
				return fmt.Errorf("repl: tail at %d no longer on disk", cur)
			}
			if err := send(serve.EncodeReplFrames(batch)); err != nil {
				return err
			}
			cur += uint64(len(batch.Frames))
			n.met.streamed(len(batch.Frames))
			continue
		}
		status := &serve.ReplStatus{Role: n.Role(), Next: next, PrimaryNext: next, Now: d.Now()}
		select {
		case <-stop:
			return nil
		case <-wake:
		case <-heartbeat.C:
			if err := send(serve.EncodeReplStatus(status)); err != nil {
				return err
			}
		}
	}
}

// ---- follower loop ------------------------------------------------------

// run is the follower loop: dial, subscribe, apply until the session
// ends, note the cause, back off, repeat — until stopped or promoted.
func (n *Node) run() {
	defer close(n.doneCh)
	bo := backoff.New(n.cfg.ReconnectMin, n.cfg.ReconnectMax, n.cfg.Seed)
	var lostSince time.Time
	for {
		if n.isStopped() || n.isPromoted() {
			return
		}
		cause, subscribed := n.session()
		if n.isStopped() || n.isPromoted() {
			return
		}
		n.hmu.Lock()
		n.reconnects++
		n.lastCause = cause
		n.hmu.Unlock()
		n.met.reconnected()
		n.log.Warn("session ended; reconnecting", "cause", cause, "upstream", n.cfg.Upstream)
		if subscribed {
			bo.Reset()
			lostSince = time.Time{}
		}
		if lostSince.IsZero() {
			lostSince = time.Now()
		}
		if n.cfg.PromoteAfter > 0 && time.Since(lostSince) >= n.cfg.PromoteAfter {
			n.log.Warn("upstream lost; self-promoting", "after", n.cfg.PromoteAfter)
			if err := n.Promote(); err != nil {
				n.log.Error("self-promotion failed", "err", err)
			}
			return
		}
		timer := time.NewTimer(bo.Next())
		select {
		case <-n.stopCh:
			timer.Stop()
			return
		case <-n.promoted:
			timer.Stop()
			return
		case <-timer.C:
		}
	}
}

// session runs one replication session: one connection, one
// subscription, applied until something breaks. It returns the cause
// label and whether the subscription was acknowledged (progress, for
// backoff reset).
func (n *Node) session() (cause string, subscribed bool) {
	conn, err := n.cfg.Dial(n.cfg.Upstream)
	if err != nil {
		return "dial", false
	}
	defer conn.Close() //anclint:ignore droppederr teardown of a replication session; nothing to recover

	liveness := 4 * n.cfg.Heartbeat
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	conn.SetDeadline(time.Now().Add(liveness))
	if err := serve.WritePreamble(conn); err != nil {
		return "handshake", false
	}
	if _, err := serve.ReadPreamble(br); err != nil {
		return "handshake", false
	}
	from := n.durable().LoggedActivations()
	if err := serve.WriteRequest(bw, &serve.Request{Op: serve.OpReplSubscribe, ID: 1, From: from}); err != nil {
		return "handshake", false
	}
	resp, err := serve.ReadResponse(br, serve.OpReplSubscribe, n.cfg.MaxFrame)
	if err != nil {
		return "handshake", false
	}
	if resp.Err != nil {
		if resp.Err.Code == serve.ErrCodeShuttingDown {
			return "drain", false
		}
		return "rejected", false
	}
	n.log.Info("subscribed", "upstream", n.cfg.Upstream, "from", from)
	n.hmu.Lock()
	n.lastMsg = time.Now()
	n.hmu.Unlock()

	var snap []byte // snapshot assembly buffer, nil when none in flight
	var snapIdx uint64
	for {
		if n.isStopped() || n.isPromoted() {
			return "stop", true
		}
		conn.SetReadDeadline(time.Now().Add(liveness))
		payload, err := serve.ReadFrame(br, n.cfg.MaxFrame)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return "stall", true
			}
			return "crash", true
		}
		msg, err := serve.DecodeReplMessage(payload)
		if err != nil {
			n.log.Warn("bad stream message", "err", err)
			return "protocol", true
		}
		n.hmu.Lock()
		n.lastMsg = time.Now()
		n.hmu.Unlock()
		switch {
		case msg.Err != nil:
			if msg.Err.Code == serve.ErrCodeShuttingDown {
				return "drain", true
			}
			return "error", true
		case msg.Status != nil:
			n.hmu.Lock()
			n.primaryNext, n.primaryNow = msg.Status.PrimaryNext, msg.Status.Now
			n.hmu.Unlock()
		case msg.Frames != nil:
			if cause := n.applyFrames(msg.Frames); cause != "" {
				return cause, true
			}
		case msg.Snapshot != nil:
			s := msg.Snapshot
			if s.Off == 0 {
				snap, snapIdx = make([]byte, 0, s.Total), s.Index
			}
			if snap == nil || s.Index != snapIdx || s.Off != uint64(len(snap)) {
				return "protocol", true
			}
			snap = append(snap, s.Data...)
			if uint64(len(snap)) == s.Total {
				if cause := n.restore(snap, snapIdx); cause != "" {
					return cause, true
				}
				snap = nil
			}
		}
	}
}

// applyFrames applies one shipped batch: stale duplicates (below the
// local cursor — legitimate overlap after a reconnect) are skipped and
// counted, a gap above the cursor ends the session, everything else goes
// through ApplyFrame. A frame that arrived with a shipped trace ID is
// applied under a local "repl.apply" span minted into the primary's
// trace, so the distributed trace shows the follower's replay. An empty
// cause means success.
func (n *Node) applyFrames(f *serve.ReplFrames) string {
	d := n.durable()
	for i, frame := range f.Frames {
		idx := f.First + uint64(i)
		next := d.LoggedActivations()
		if idx < next {
			n.met.duplicate()
			continue
		}
		if idx > next {
			n.log.Warn("frame gap", "got", idx, "log", next)
			return "gap"
		}
		if n.isPromoted() {
			// A promotion raced this batch: the log is sealed; do not
			// apply replicated frames over locally accepted writes.
			return "stop"
		}
		var tid uint64
		if i < len(f.Traces) {
			tid = f.Traces[i]
		}
		var sp trace.SpanHandle
		if tid != 0 && n.cfg.Tracer != nil {
			sp = n.cfg.Tracer.Start("repl.apply", trace.Context{TraceID: tid})
			sp.AnnotateInt("frame", int64(idx))
		}
		err := d.ApplyFrameTraced(idx, frame, sp)
		if err != nil {
			sp.Fail()
		}
		sp.End()
		if err != nil {
			n.log.Error("apply failed", "frame", idx, "err", err, "trace", trace.FormatID(tid))
			return "apply"
		}
		n.met.applied()
	}
	n.hmu.Lock()
	if end := f.First + uint64(len(f.Frames)); end > n.primaryNext {
		n.primaryNext = end
	}
	n.hmu.Unlock()
	return ""
}

// restore bootstraps the follower from a fully assembled snapshot: the
// wrapped network is closed, the durable directory is rebuilt around the
// shipped checkpoint at index, and the new network swaps in. A snapshot
// at or below the local cursor is ignored (the local log is already
// further along).
func (n *Node) restore(snap []byte, index uint64) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if index <= n.d.LoggedActivations() {
		return ""
	}
	dir, cfg := n.d.Dir(), n.cfg.Durable
	if err := n.d.Close(); err != nil {
		n.log.Error("closing pre-snapshot state failed", "err", err)
		return "apply"
	}
	d, err := anc.RestoreDurable(snap, index, dir, cfg)
	if err != nil {
		n.log.Error("snapshot restore failed", "err", err)
		return "apply"
	}
	n.d = d
	n.met.restored()
	n.log.Info("bootstrapped from snapshot", "frame", index)
	return ""
}
