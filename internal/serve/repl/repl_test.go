package repl

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"anc"
	"anc/internal/serve"
	"anc/internal/serve/client"
)

// barbell builds two K5s joined by a bridge — the serving suite's
// standard small graph (10 nodes, 21 edges).
func barbell() (int, [][2]int) {
	var edges [][2]int
	for base := 0; base <= 5; base += 5 {
		for u := base; u < base+5; u++ {
			for v := u + 1; v < base+5; v++ {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	edges = append(edges, [2]int{4, 5})
	return 10, edges
}

// testNetwork builds the barbell with the suite's standard parameters —
// every node in a replication test starts from this identical network,
// which is what makes byte-identical convergence checkable.
func testNetwork(t *testing.T) *anc.Network {
	t.Helper()
	n, edges := barbell()
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.2
	cfg.Mu = 3
	net, err := anc.NewNetwork(n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// testStream returns nb batches of per activations with strictly
// increasing timestamps.
func testStream(nb, per int) [][]anc.Activation {
	_, edges := barbell()
	batches := make([][]anc.Activation, nb)
	ts := 0.0
	for i := range batches {
		batch := make([]anc.Activation, per)
		for j := range batch {
			e := edges[(i*per+j)*7%len(edges)]
			ts += 0.5
			batch[j] = anc.Activation{U: e[0], V: e[1], T: ts}
		}
		batches[i] = batch
	}
	return batches
}

func canonClusters(cs [][]int) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		c = append([]int(nil), c...)
		sort.Ints(c)
		parts[i] = fmt.Sprint(c)
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// newPrimary builds a durable primary node and its server.
func newPrimary(t *testing.T, dcfg anc.DurableConfig) (*Node, *serve.Server) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "primary")
	d, err := anc.NewDurable(testNetwork(t), dir, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	node := New(d, Config{Heartbeat: 20 * time.Millisecond, Logf: t.Logf})
	s := serve.New(node, serve.Config{Repl: node, Logf: t.Logf})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return node, s
}

// newFollower builds a durable follower node over its own directory and
// identical initial network, following addr.
func newFollower(t *testing.T, addr, name string, dcfg anc.DurableConfig, tweak func(*Config)) *Node {
	t.Helper()
	dir := filepath.Join(t.TempDir(), name)
	d, err := anc.NewDurable(testNetwork(t), dir, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Upstream:     addr,
		Durable:      dcfg,
		Heartbeat:    20 * time.Millisecond,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 100 * time.Millisecond,
		Seed:         42,
		Logf:         t.Logf,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	node := New(d, cfg)
	node.Start()
	return node
}

// waitCursor polls until the node's local log cursor reaches target.
func waitCursor(t *testing.T, n *Node, target uint64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if n.Status().Next >= target {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("cursor stuck at %d, want %d (cause %q)", n.Status().Next, target, n.Status().LastReconnect)
}

// waitCause polls until the node's last recorded reconnect cause is
// want.
func waitCause(t *testing.T, n *Node, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if n.Status().LastReconnect == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("last reconnect cause %q, want %q", n.Status().LastReconnect, want)
}

// saveBytes serializes a node's wrapped network — the convergence
// fingerprint: identical histories must produce identical bytes.
func saveBytes(t *testing.T, n *Node) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := n.Durable().Unwrap().Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFollowerCatchUpMidStream is the tentpole integration test: the
// primary ingests a bursty stream over TCP while a follower subscribes
// mid-stream — far enough behind that it must bootstrap from checkpoint
// + WAL tail — then converges and, after a graceful drain, holds a
// byte-identical network and records "drain" (not "crash") as the
// session end.
func TestFollowerCatchUpMidStream(t *testing.T) {
	// Tiny segments and an aggressive checkpoint cadence force segment
	// truncation before the follower arrives, exercising the snapshot
	// bootstrap; the tail after the checkpoint exercises frame shipping.
	dcfg := anc.DurableConfig{SegmentSize: 512, CheckpointEvery: 60, Sync: anc.SyncNever}
	primary, server := newPrimary(t, dcfg)
	batches := testStream(16, 20)

	c, err := client.Dial(server.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for _, b := range batches[:8] {
		if err := c.ActivateBatch(ctx, b); err != nil {
			t.Fatal(err)
		}
	}

	// The follower subscribes mid-stream, from frame 0 — below the
	// primary's retained tail by now. It runs the same durable config:
	// checkpoint cadence decides where the lossy rescale fold happens, so
	// byte-identical convergence needs identical cadence on both sides.
	follower := newFollower(t, server.Addr().String(), "follower", dcfg, nil)
	defer follower.Close()

	// Bursty second half: ingest continues while the follower catches up.
	for i, b := range batches[8:] {
		if err := c.ActivateBatch(ctx, b); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
	}

	target := primary.Status().Next
	waitCursor(t, follower, target)

	// The follower answers queries locally, identically to the primary.
	level := primary.Stats().SqrtLevel
	if got, want := canonClusters(follower.Clusters(level)), canonClusters(primary.Clusters(level)); got != want {
		t.Fatalf("follower clusters:\n got %s\nwant %s", got, want)
	}
	if got, want := follower.EstimateDistance(0, 9), primary.EstimateDistance(0, 9); got != want {
		t.Fatalf("follower distance %v, want %v", got, want)
	}
	st := follower.Status()
	if st.Role != serve.RoleFollower {
		t.Fatalf("role %d, want follower", st.Role)
	}
	if st.LagFrames() != 0 {
		t.Fatalf("lag %d frames after convergence", st.LagFrames())
	}

	// Ingest at the follower must be refused with the typed code.
	err = follower.ActivateBatch(batches[0])
	we, ok := err.(*serve.WireError)
	if !ok || we.Code != serve.ErrCodeReadOnly {
		t.Fatalf("follower ingest error %v, want read-only", err)
	}

	want := saveBytes(t, primary)

	// Graceful drain: the follower must observe the typed shutdown frame
	// and record "drain", not "crash".
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	waitCause(t, follower, "drain")

	if got := saveBytes(t, follower); !bytes.Equal(got, want) {
		t.Fatalf("follower state diverged: %d vs %d bytes (or content)", len(got), len(want))
	}
}

// TestFollowerAnalyticsParity asserts the analytics reads are follower-
// servable and exact: after catch-up, TieRank (global and per-cluster)
// and the complete evolution event sequence at a replica equal the
// primary's, queried through the replica's own server over the wire.
// Evolution parity is the strong half: it holds because one WAL frame is
// exactly one Activate/ActivateBatch call, so the follower repairs its
// pyramid — and diffs successive clusterings — at the primary's cadence,
// not just toward the primary's final state.
func TestFollowerAnalyticsParity(t *testing.T) {
	dcfg := anc.DurableConfig{Sync: anc.SyncNever}
	primary, server := newPrimary(t, dcfg)
	batches := testStream(12, 15)

	// Subscribe from frame 0 (default retention keeps the whole log), so
	// the follower replays every repair the primary ever ran.
	follower := newFollower(t, server.Addr().String(), "follower", dcfg, nil)
	defer follower.Close()
	fsrv := serve.New(follower, serve.Config{Repl: follower, Logf: t.Logf})
	if err := fsrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial(server.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for _, b := range batches {
		if err := c.ActivateBatch(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	// Churn phases so the tracked-level clustering actually moves: a
	// bridge-heavy phase pulls the two K5s together, then a one-sided
	// phase lets the bridge decay and pulls them apart again. Each phase
	// lands in many small batches — one repair (and one diff) per batch.
	_, edges := barbell()
	ts := 0.5 * float64(len(batches)*len(batches[0]))
	for phase := 0; phase < 6; phase++ {
		for batch := 0; batch < 4; batch++ {
			churn := make([]anc.Activation, 20)
			for i := range churn {
				e := [2]int{4, 5} // the bridge
				if phase%2 == 1 {
					e = edges[i%10] // K5-A internal edges only
				}
				ts += 0.5
				churn[i] = anc.Activation{U: e[0], V: e[1], T: ts}
			}
			if err := c.ActivateBatch(ctx, churn); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitCursor(t, follower, primary.Status().Next)

	fc, err := client.Dial(fsrv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	level := primary.Stats().SqrtLevel
	for _, lv := range []int{-1, level} {
		want, err := c.TieRank(ctx, lv, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fc.TieRank(ctx, lv, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("follower TieRank(level=%d):\n got %+v\nwant %+v", lv, got, want)
		}
	}

	wantEv, wantSeq, wantDrop := primary.Evolution(0)
	gotEv, gotSeq, gotDrop, err := fc.Evolution(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != wantSeq || gotDrop != wantDrop || !reflect.DeepEqual(gotEv, wantEv) {
		t.Errorf("follower evolution (%d events, seq %d, dropped %d) diverged from primary (%d events, seq %d, dropped %d)",
			len(gotEv), gotSeq, gotDrop, len(wantEv), wantSeq, wantDrop)
	}
	if wantSeq == 0 {
		t.Error("stream produced no evolution events; parity check is vacuous")
	}
	// Cursor semantics hold over the wire: reads past the newest event
	// are empty, at the same sequence number.
	tail, tailSeq, _, err := fc.Evolution(ctx, gotSeq)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 0 || tailSeq != gotSeq {
		t.Errorf("read past newest event returned %d events, seq %d (want 0 at %d)", len(tail), tailSeq, gotSeq)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fsrv.Shutdown(sctx); err != nil {
		t.Fatalf("follower shutdown: %v", err)
	}
	if err := server.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestReplFaultInjection drives replication through a FaultConn dropping,
// duplicating, delaying, corrupting and cutting frames; the follower must
// reconnect (several times) and still converge byte-identically.
func TestReplFaultInjection(t *testing.T) {
	dcfg := anc.DurableConfig{Sync: anc.SyncNever}
	primary, server := newPrimary(t, dcfg)
	defer server.Kill()
	batches := testStream(20, 15)

	var seed atomic.Int64
	follower := newFollower(t, server.Addr().String(), "chaotic", dcfg, func(cfg *Config) {
		cfg.ChunkFrames = 2 // many small pushes: more frames to fault
		cfg.Dial = func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return NewFaultConn(conn, FaultConfig{
				Seed:          seed.Add(1),
				DropProb:      0.05,
				DupProb:       0.10,
				DelayProb:     0.10,
				MaxDelay:      3 * time.Millisecond,
				CorruptProb:   0.03,
				TruncateAfter: 8,
			}), nil
		}
	})
	defer follower.Close()

	for i, b := range batches {
		if err := primary.ActivateBatch(b); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			time.Sleep(time.Millisecond)
		}
	}

	// Every session's link is cut after a few frames, so reconnects are
	// guaranteed; wait for the chaos to actually bite before asserting
	// convergence (heartbeats keep frames flowing even when ingest idles).
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && follower.Status().Reconnects == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if follower.Status().Reconnects == 0 {
		t.Fatal("fault injection produced no reconnects; the test exercised nothing")
	}
	waitCursor(t, follower, primary.Status().Next)
	if got, want := saveBytes(t, follower), saveBytes(t, primary); !bytes.Equal(got, want) {
		t.Fatalf("follower state diverged under faults: %d vs %d bytes (or content)", len(got), len(want))
	}
}

// TestReplFailover is the failover drill (and the repl-smoke target): a
// primary with two followers is killed mid-stream; one follower promotes,
// seals its log and takes over ingest; the other retargets to it; both
// converge to byte-identical state including the post-failover writes.
func TestReplFailover(t *testing.T) {
	dcfg := anc.DurableConfig{Sync: anc.SyncNever}
	primary, server := newPrimary(t, dcfg)
	batches := testStream(18, 15)

	a := newFollower(t, server.Addr().String(), "a", dcfg, nil)
	defer a.Close()
	b := newFollower(t, server.Addr().String(), "b", dcfg, nil)
	defer b.Close()

	for _, batch := range batches[:9] {
		if err := primary.ActivateBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	preKill := primary.Status().Next
	waitCursor(t, a, preKill)
	waitCursor(t, b, preKill)

	// Crash the primary: no drain frame, no checkpoint.
	server.Kill()
	waitCause(t, a, "crash")

	// Failover: promote A, front it with a server, point B at it.
	if err := a.Promote(); err != nil {
		t.Fatal(err)
	}
	if a.ReadOnly() || a.Role() != serve.RolePrimary {
		t.Fatal("promoted node still read-only")
	}
	serverA := serve.New(a, serve.Config{Repl: a, Logf: t.Logf})
	if err := serverA.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	b.Retarget(serverA.Addr().String())

	// Ingest continues on the new primary.
	for _, batch := range batches[9:] {
		if err := a.ActivateBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	waitCursor(t, b, a.Status().Next)

	want := saveBytes(t, a)
	if got := saveBytes(t, b); !bytes.Equal(got, want) {
		t.Fatalf("post-failover divergence: %d vs %d bytes (or content)", len(got), len(want))
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := serverA.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestReplChaos combines every failure class in one run: fault-injected
// links, a mid-stream primary kill, promotion, retarget and continued
// ingest — the full chaos sequence, race-clean, asserting byte-identical
// convergence at the end.
func TestReplChaos(t *testing.T) {
	dcfg := anc.DurableConfig{SegmentSize: 1024, CheckpointEvery: 90, Sync: anc.SyncNever}
	primary, server := newPrimary(t, dcfg)
	batches := testStream(24, 15)

	var seed atomic.Int64 // both followers' loops dial through this closure
	faultDial := func(cfg *Config) {
		cfg.ChunkFrames = 2
		cfg.Dial = func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return NewFaultConn(conn, FaultConfig{
				Seed: seed.Add(1), DropProb: 0.05, DupProb: 0.08, DelayProb: 0.08,
				MaxDelay: 2 * time.Millisecond, CorruptProb: 0.02, TruncateAfter: 30,
			}), nil
		}
	}
	a := newFollower(t, server.Addr().String(), "a", dcfg, faultDial)
	defer a.Close()
	b := newFollower(t, server.Addr().String(), "b", dcfg, faultDial)
	defer b.Close()

	// Burst one: ingest over faulty links.
	for i, batch := range batches[:12] {
		if err := primary.ActivateBatch(batch); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	preKill := primary.Status().Next
	waitCursor(t, a, preKill)
	waitCursor(t, b, preKill)

	// Partition-then-kill: the primary vanishes without a drain frame.
	server.Kill()
	if err := a.Promote(); err != nil {
		t.Fatal(err)
	}
	serverA := serve.New(a, serve.Config{Repl: a, Logf: t.Logf})
	if err := serverA.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	b.Retarget(serverA.Addr().String())

	// Burst two: the new primary carries the rest of the stream.
	for _, batch := range batches[12:] {
		if err := a.ActivateBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	waitCursor(t, b, a.Status().Next)

	want := saveBytes(t, a)
	if got := saveBytes(t, b); !bytes.Equal(got, want) {
		t.Fatalf("chaos divergence: %d vs %d bytes (or content)", len(got), len(want))
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := serverA.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestPromoteOnLoss checks the automatic failover timer: a follower
// whose upstream stays unreachable past PromoteAfter promotes itself.
func TestPromoteOnLoss(t *testing.T) {
	dcfg := anc.DurableConfig{Sync: anc.SyncNever}
	primary, server := newPrimary(t, dcfg)
	batches := testStream(4, 10)
	for _, batch := range batches {
		if err := primary.ActivateBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	f := newFollower(t, server.Addr().String(), "auto", dcfg, func(cfg *Config) {
		cfg.PromoteAfter = 100 * time.Millisecond
	})
	defer f.Close()
	waitCursor(t, f, primary.Status().Next)

	server.Kill()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if !f.ReadOnly() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if f.ReadOnly() {
		t.Fatal("follower did not self-promote after upstream loss")
	}
	// The promoted node accepts writes that continue the sealed log.
	more := testStream(6, 10)[5]
	if err := f.ActivateBatch(more); err != nil {
		t.Fatalf("post-promotion ingest: %v", err)
	}
}

// TestFaultConnCut checks the injector's truncation: the reader sees a
// partial frame then the cut error — never a quietly missing tail.
func TestFaultConnCut(t *testing.T) {
	dcfg := anc.DurableConfig{Sync: anc.SyncNever}
	primary, server := newPrimary(t, dcfg)
	defer server.Kill()
	for _, batch := range testStream(6, 10) {
		if err := primary.ActivateBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	conn, err := net.Dial("tcp", server.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fc := NewFaultConn(conn, FaultConfig{TruncateAfter: 1})
	defer fc.Close()
	if err := serve.WritePreamble(fc); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(fc)
	if _, err := serve.ReadPreamble(br); err != nil {
		t.Fatal(err)
	}
	if err := serve.WriteRequest(bufio.NewWriter(fc), &serve.Request{Op: serve.OpReplSubscribe, ID: 1, From: 0}); err != nil {
		t.Fatal(err)
	}
	// Frame 1 (the subscribe OK) passes; some later read must fail with
	// the injected cut.
	var sawCut bool
	for i := 0; i < 100; i++ {
		if _, err := serve.ReadFrame(br, serve.DefaultMaxFrame); err != nil {
			sawCut = true
			break
		}
	}
	if !sawCut {
		t.Fatal("truncating FaultConn never surfaced an error")
	}
}
