package serve

// Replication wire messages. After an OpReplSubscribe request is
// acknowledged with an OK response, the connection stops being
// request/response: the server pushes frames whose payload starts with an
// op byte (OpReplFrames, OpReplStatus, OpReplSnapshot) — or statusErr for
// a typed error such as the shutdown drain notice — and the follower only
// reads. The framing itself (length + CRC32C) is unchanged, so a torn or
// corrupted push frame is detected exactly like a torn WAL record.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Replication roles reported in ReplStatus.Role and StatsReply.Role.
const (
	// RoleNone: replication is not configured on this node.
	RoleNone uint8 = iota
	// RolePrimary: this node accepts ingest and serves the frame stream.
	RolePrimary
	// RoleFollower: this node applies a primary's frames and rejects
	// ingest with ErrCodeReadOnly until promoted.
	RoleFollower
)

// RoleName maps roles to stable short names for logs and CLI output.
func RoleName(role uint8) string {
	switch role {
	case RoleNone:
		return "none"
	case RolePrimary:
		return "primary"
	case RoleFollower:
		return "follower"
	}
	return fmt.Sprintf("role-%d", role)
}

// ReplStatus is a replication health snapshot: the body of an
// OpReplStatus response and the heartbeat push on a replication stream.
type ReplStatus struct {
	// Role is the reporting node's current role.
	Role uint8
	// Next is the node's local WAL cursor (index one past the last logged
	// frame). PrimaryNext is the primary's cursor as of the node's last
	// replication message — equal to Next on the primary itself.
	Next, PrimaryNext uint64
	// Activations is the node's applied-activation count (frames can carry
	// many activations, so this moves faster than Next).
	Activations uint64
	// Now is the node's network time; PrimaryNow the primary's network
	// time as of the last replication message. Their difference is the
	// decayed-state staleness bound: a follower lagging by Δt serves the
	// well-defined state of time Now, not a wrong one.
	Now, PrimaryNow float64
	// LagSeconds is the wall-clock age of the node's last replication
	// message (0 on the primary).
	LagSeconds float64
	// Reconnects counts replication session re-establishments;
	// LastReconnect is the cause of the most recent one ("drain", "crash",
	// "gap", ... — empty until the first).
	Reconnects    uint32
	LastReconnect string
}

// LagFrames is the follower's frame lag: committed primary frames not yet
// in the local log.
func (s *ReplStatus) LagFrames() uint64 {
	if s.PrimaryNext > s.Next {
		return s.PrimaryNext - s.Next
	}
	return 0
}

// ReplFrames is one batch of shipped WAL frames: contiguous records
// starting at global index First, each payload exactly as it sits in the
// primary's log.
//
// Traces, when non-nil, carries one trace ID per frame (0 = untraced), so
// a follower's apply spans stitch into the primary's trace. The section
// is optional on the wire: the primary only ships it to subscribers that
// negotiated protocol version >= 3, and an absent section decodes as nil.
type ReplFrames struct {
	First  uint64
	Frames [][]byte
	Traces []uint64
}

// ReplSnapshot is one chunk of a checkpoint shipped to bootstrap a
// follower whose log is behind the primary's retained segments. Index is
// the WAL index the checkpoint covers, Total the full snapshot size, Off
// this chunk's offset; chunks arrive in order and the message with
// Off+len(Data) == Total completes the snapshot.
type ReplSnapshot struct {
	Index, Total, Off uint64
	Data              []byte
}

// ReplMessage is one decoded push frame from a replication stream:
// exactly one of Frames, Status, Snapshot, Err is set.
type ReplMessage struct {
	Frames   *ReplFrames
	Status   *ReplStatus
	Snapshot *ReplSnapshot
	Err      *WireError
}

// ---- encode -------------------------------------------------------------

func appendReplStatus(b []byte, s *ReplStatus) []byte {
	last := s.LastReconnect
	if len(last) > math.MaxUint16 {
		last = last[:math.MaxUint16]
	}
	b = append(b, s.Role)
	b = binary.LittleEndian.AppendUint64(b, s.Next)
	b = binary.LittleEndian.AppendUint64(b, s.PrimaryNext)
	b = binary.LittleEndian.AppendUint64(b, s.Activations)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Now))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.PrimaryNow))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.LagSeconds))
	b = binary.LittleEndian.AppendUint32(b, s.Reconnects)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(last)))
	b = append(b, last...)
	return b
}

func decodeReplStatus(body []byte) (*ReplStatus, []byte, error) {
	const fixed = 1 + 6*8 + 4 + 2
	if len(body) < fixed {
		return nil, nil, fmt.Errorf("repl status of %d bytes", len(body))
	}
	s := &ReplStatus{
		Role:        body[0],
		Next:        binary.LittleEndian.Uint64(body[1:9]),
		PrimaryNext: binary.LittleEndian.Uint64(body[9:17]),
		Activations: binary.LittleEndian.Uint64(body[17:25]),
		Now:         math.Float64frombits(binary.LittleEndian.Uint64(body[25:33])),
		PrimaryNow:  math.Float64frombits(binary.LittleEndian.Uint64(body[33:41])),
		LagSeconds:  math.Float64frombits(binary.LittleEndian.Uint64(body[41:49])),
		Reconnects:  binary.LittleEndian.Uint32(body[49:53]),
	}
	n := int(binary.LittleEndian.Uint16(body[53:55]))
	if len(body) < fixed+n {
		return nil, nil, fmt.Errorf("repl status reconnect cause of %d bytes in %d", n, len(body)-fixed)
	}
	s.LastReconnect = string(body[fixed : fixed+n])
	return s, body[fixed+n:], nil
}

// EncodeReplStatus serializes a status push payload (op byte included).
func EncodeReplStatus(s *ReplStatus) []byte {
	b := make([]byte, 0, 64+len(s.LastReconnect))
	b = append(b, OpReplStatus)
	return appendReplStatus(b, s)
}

// DecodeReplStatus parses a status push payload. It is strict: trailing
// bytes are an error, so a decode always round-trips byte-identically
// through EncodeReplStatus.
func DecodeReplStatus(payload []byte) (*ReplStatus, error) {
	if len(payload) < 1 || payload[0] != OpReplStatus {
		return nil, fmt.Errorf("not a repl-status payload")
	}
	s, rest, err := decodeReplStatus(payload[1:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("repl status: %d trailing bytes", len(rest))
	}
	return s, nil
}

// EncodeReplFrames serializes a frame-batch push payload: op(1) |
// first(8) | count(4) | {len(4) | payload}* , followed — only when
// Traces is non-nil — by a trace-ID section of exactly count uint64s.
// Traces must then have one entry per frame.
func EncodeReplFrames(f *ReplFrames) []byte {
	size := 13
	for _, fr := range f.Frames {
		size += 4 + len(fr)
	}
	if f.Traces != nil {
		size += 8 * len(f.Traces)
	}
	b := make([]byte, 0, size)
	b = append(b, OpReplFrames)
	b = binary.LittleEndian.AppendUint64(b, f.First)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Frames)))
	for _, fr := range f.Frames {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(fr)))
		b = append(b, fr...)
	}
	for _, id := range f.Traces {
		b = binary.LittleEndian.AppendUint64(b, id)
	}
	return b
}

// DecodeReplFrames parses a frame-batch push payload. Strict: a record
// announcing more bytes than remain, a zero-length record and trailing
// bytes are all errors — a truncated batch must never apply a prefix
// silently.
func DecodeReplFrames(payload []byte) (*ReplFrames, error) {
	if len(payload) < 13 || payload[0] != OpReplFrames {
		return nil, fmt.Errorf("not a repl-frames payload")
	}
	f := &ReplFrames{First: binary.LittleEndian.Uint64(payload[1:9])}
	count := int(binary.LittleEndian.Uint32(payload[9:13]))
	body := payload[13:]
	f.Frames = make([][]byte, 0, min(count, 1024))
	for i := 0; i < count; i++ {
		if len(body) < 4 {
			return nil, fmt.Errorf("repl frames: record %d header truncated", i)
		}
		n := int(binary.LittleEndian.Uint32(body[0:4]))
		body = body[4:]
		if n == 0 {
			return nil, fmt.Errorf("repl frames: empty record %d", i)
		}
		if len(body) < n {
			return nil, fmt.Errorf("repl frames: record %d of %d bytes, %d remain", i, n, len(body))
		}
		f.Frames = append(f.Frames, body[:n:n])
		body = body[n:]
	}
	// An optional trace-ID section: either absent or exactly one uint64
	// per frame (and never empty, so decode∘encode stays byte-identical).
	if len(body) == 8*count && count > 0 {
		f.Traces = make([]uint64, count)
		for i := range f.Traces {
			f.Traces[i] = binary.LittleEndian.Uint64(body[8*i:])
		}
		body = nil
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("repl frames: %d trailing bytes", len(body))
	}
	return f, nil
}

// EncodeReplSnapshot serializes a snapshot-chunk push payload: op(1) |
// index(8) | total(8) | off(8) | len(4) | data.
func EncodeReplSnapshot(s *ReplSnapshot) []byte {
	b := make([]byte, 0, 29+len(s.Data))
	b = append(b, OpReplSnapshot)
	b = binary.LittleEndian.AppendUint64(b, s.Index)
	b = binary.LittleEndian.AppendUint64(b, s.Total)
	b = binary.LittleEndian.AppendUint64(b, s.Off)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Data)))
	b = append(b, s.Data...)
	return b
}

// DecodeReplSnapshot parses a snapshot-chunk push payload, strictly.
func DecodeReplSnapshot(payload []byte) (*ReplSnapshot, error) {
	if len(payload) < 29 || payload[0] != OpReplSnapshot {
		return nil, fmt.Errorf("not a repl-snapshot payload")
	}
	s := &ReplSnapshot{
		Index: binary.LittleEndian.Uint64(payload[1:9]),
		Total: binary.LittleEndian.Uint64(payload[9:17]),
		Off:   binary.LittleEndian.Uint64(payload[17:25]),
	}
	n := int(binary.LittleEndian.Uint32(payload[25:29]))
	if len(payload) != 29+n {
		return nil, fmt.Errorf("repl snapshot chunk of %d bytes, want %d", len(payload)-29, n)
	}
	if s.Off+uint64(n) > s.Total {
		return nil, fmt.Errorf("repl snapshot chunk [%d, %d) past total %d", s.Off, s.Off+uint64(n), s.Total)
	}
	s.Data = payload[29 : 29+n : 29+n]
	return s, nil
}

// DecodeReplMessage parses one push payload from a replication stream by
// its leading byte. A statusErr payload (the server's typed drain notice)
// decodes into Err; anything else is a protocol violation.
func DecodeReplMessage(payload []byte) (*ReplMessage, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("empty repl message")
	}
	switch payload[0] {
	case OpReplFrames:
		f, err := DecodeReplFrames(payload)
		if err != nil {
			return nil, err
		}
		return &ReplMessage{Frames: f}, nil
	case OpReplStatus:
		s, err := DecodeReplStatus(payload)
		if err != nil {
			return nil, err
		}
		return &ReplMessage{Status: s}, nil
	case OpReplSnapshot:
		s, err := DecodeReplSnapshot(payload)
		if err != nil {
			return nil, err
		}
		return &ReplMessage{Snapshot: s}, nil
	case statusErr:
		resp, err := DecodeResponse(OpReplSubscribe, payload)
		if err != nil {
			return nil, err
		}
		return &ReplMessage{Err: resp.Err}, nil
	}
	return nil, fmt.Errorf("unexpected repl message op %d", payload[0])
}

// ReadFrame reads one length+CRC frame from a replication stream,
// enforcing maxFrame — the exported form of the server's frame reader,
// for follower loops outside this package.
func ReadFrame(r io.Reader, maxFrame int) ([]byte, error) {
	return readFrame(r, maxFrame)
}

// WriteFrame frames and flushes one payload — the exported form of the
// server's frame writer, for replication senders outside this package.
func WriteFrame(w *bufio.Writer, payload []byte) error {
	return writeFrame(w, payload)
}
