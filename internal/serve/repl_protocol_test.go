package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func sampleReplStatus() *ReplStatus {
	return &ReplStatus{
		Role: RoleFollower, Next: 100, PrimaryNext: 112, Activations: 2000,
		Now: 50.5, PrimaryNow: 56.0, LagSeconds: 0.125,
		Reconnects: 4, LastReconnect: "stall",
	}
}

func sampleReplFrames() *ReplFrames {
	return &ReplFrames{First: 77, Frames: [][]byte{
		{1, 2, 3, 4},
		bytes.Repeat([]byte{0xAB}, 160),
		{9},
	}}
}

func sampleReplSnapshot() *ReplSnapshot {
	return &ReplSnapshot{Index: 60, Total: 1000, Off: 512, Data: bytes.Repeat([]byte{7}, 200)}
}

func TestReplStatusRoundTrip(t *testing.T) {
	for _, s := range []*ReplStatus{sampleReplStatus(), {}, {Role: RolePrimary, Next: 5, PrimaryNext: 5}} {
		payload := EncodeReplStatus(s)
		got, err := DecodeReplStatus(payload)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *s {
			t.Fatalf("round trip: got %+v, want %+v", got, s)
		}
		if !bytes.Equal(EncodeReplStatus(got), payload) {
			t.Fatal("re-encode differs")
		}
	}
	if s := sampleReplStatus(); s.LagFrames() != 12 {
		t.Fatalf("LagFrames = %d, want 12", s.LagFrames())
	}
	if s := (&ReplStatus{Next: 9, PrimaryNext: 3}); s.LagFrames() != 0 {
		t.Fatalf("negative lag clamped to %d, want 0", s.LagFrames())
	}
}

func TestReplFramesRoundTrip(t *testing.T) {
	f := sampleReplFrames()
	payload := EncodeReplFrames(f)
	got, err := DecodeReplFrames(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.First != f.First || len(got.Frames) != len(f.Frames) {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range f.Frames {
		if !bytes.Equal(got.Frames[i], f.Frames[i]) {
			t.Fatalf("frame %d mutated", i)
		}
	}
	if !bytes.Equal(EncodeReplFrames(got), payload) {
		t.Fatal("re-encode differs")
	}
}

func TestReplSnapshotRoundTrip(t *testing.T) {
	s := sampleReplSnapshot()
	payload := EncodeReplSnapshot(s)
	got, err := DecodeReplSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != s.Index || got.Total != s.Total || got.Off != s.Off || !bytes.Equal(got.Data, s.Data) {
		t.Fatalf("round trip: %+v", got)
	}
	if !bytes.Equal(EncodeReplSnapshot(got), payload) {
		t.Fatal("re-encode differs")
	}
}

func TestDecodeReplRejects(t *testing.T) {
	frames := EncodeReplFrames(sampleReplFrames())

	countLies := bytes.Clone(frames)
	binary.LittleEndian.PutUint32(countLies[9:13], 1<<30)

	truncated := frames[:len(frames)-1]

	emptyRecord := func() []byte {
		b := []byte{OpReplFrames}
		b = binary.LittleEndian.AppendUint64(b, 0)
		b = binary.LittleEndian.AppendUint32(b, 1)
		b = binary.LittleEndian.AppendUint32(b, 0) // zero-length record
		return b
	}()

	snapPastTotal := EncodeReplSnapshot(&ReplSnapshot{Index: 1, Total: 10, Off: 8, Data: []byte{1, 2, 3}})

	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"unknown op", []byte{0xEE, 1, 2, 3}},
		{"frames count lies", countLies},
		{"frames truncated", truncated},
		{"frames trailing", append(bytes.Clone(frames), 0)},
		{"frames empty record", emptyRecord},
		{"status short", EncodeReplStatus(sampleReplStatus())[:20]},
		{"status trailing", append(EncodeReplStatus(sampleReplStatus()), 0)},
		{"snapshot short", EncodeReplSnapshot(sampleReplSnapshot())[:10]},
		{"snapshot past total", snapPastTotal},
	}
	for _, tc := range cases {
		if _, err := DecodeReplMessage(tc.payload); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

func TestDecodeReplMessageDispatch(t *testing.T) {
	if m, err := DecodeReplMessage(EncodeReplFrames(sampleReplFrames())); err != nil || m.Frames == nil {
		t.Fatalf("frames dispatch: %v %+v", err, m)
	}
	if m, err := DecodeReplMessage(EncodeReplStatus(sampleReplStatus())); err != nil || m.Status == nil {
		t.Fatalf("status dispatch: %v %+v", err, m)
	}
	if m, err := DecodeReplMessage(EncodeReplSnapshot(sampleReplSnapshot())); err != nil || m.Snapshot == nil {
		t.Fatalf("snapshot dispatch: %v %+v", err, m)
	}
	// The typed drain notice a draining server pushes to its subscribers.
	drain := EncodeError(0, ErrCodeShuttingDown, "server is draining")
	m, err := DecodeReplMessage(drain)
	if err != nil || m.Err == nil || m.Err.Code != ErrCodeShuttingDown {
		t.Fatalf("drain dispatch: %v %+v", err, m)
	}
}

// TestReplStreamTornFrame replays a pre-encoded push stream that dies
// mid-frame, the way a crashed primary tears a TCP stream: every complete
// frame before the tear must decode, the tear itself must surface as an
// error from ReadFrame, and no partial message may leak through.
func TestReplStreamTornFrame(t *testing.T) {
	var wire bytes.Buffer
	bw := bufio.NewWriter(&wire)
	pushes := []*ReplFrames{
		{First: 0, Frames: [][]byte{{1, 1, 1}, {2, 2}}},
		{First: 2, Frames: [][]byte{{3, 3, 3, 3}}},
		{First: 3, Frames: [][]byte{bytes.Repeat([]byte{4}, 300)}},
	}
	for _, p := range pushes {
		if err := WriteFrame(bw, EncodeReplFrames(p)); err != nil {
			t.Fatal(err)
		}
	}
	full := wire.Bytes()

	// Tear the stream inside the last frame's payload.
	torn := full[:len(full)-150]
	r := bytes.NewReader(torn)
	var decoded int
	for {
		payload, err := ReadFrame(r, DefaultMaxFrame)
		if err != nil {
			if err == io.EOF && decoded != len(pushes) {
				t.Fatalf("torn stream ended cleanly after %d messages", decoded)
			}
			break
		}
		msg, err := DecodeReplMessage(payload)
		if err != nil {
			t.Fatalf("complete frame %d failed to decode: %v", decoded, err)
		}
		if msg.Frames == nil || msg.Frames.First != pushes[decoded].First {
			t.Fatalf("message %d decoded wrong: %+v", decoded, msg)
		}
		decoded++
	}
	if decoded != 2 {
		t.Fatalf("decoded %d complete messages before the tear, want 2", decoded)
	}

	// Tear inside a frame HEADER (first bytes of the length word): the
	// reader must error, not block or fabricate a frame.
	hdrTorn := full[:2]
	if _, err := ReadFrame(bytes.NewReader(hdrTorn), DefaultMaxFrame); err == nil {
		t.Fatal("mid-header tear read as a frame")
	}
}

// FuzzReplFrame: any payload the frame-batch decoder accepts must re-encode
// byte-identically — the decoder is strict, so the encoding is canonical.
func FuzzReplFrame(f *testing.F) {
	f.Add(EncodeReplFrames(sampleReplFrames()))
	f.Add(EncodeReplFrames(&ReplFrames{First: 0}))
	f.Add([]byte{OpReplFrames})
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr, err := DecodeReplFrames(payload)
		if err != nil {
			return
		}
		if re := EncodeReplFrames(fr); !bytes.Equal(re, payload) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", payload, re)
		}
	})
}

// FuzzReplStatus: same byte-identity property for status payloads, plus
// snapshot chunks (they share the dispatch path).
func FuzzReplStatus(f *testing.F) {
	f.Add(EncodeReplStatus(sampleReplStatus()))
	f.Add(EncodeReplStatus(&ReplStatus{}))
	f.Add(EncodeReplSnapshot(sampleReplSnapshot()))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if s, err := DecodeReplStatus(payload); err == nil {
			if re := EncodeReplStatus(s); !bytes.Equal(re, payload) {
				t.Fatalf("status decode/encode not canonical:\n in  %x\n out %x", payload, re)
			}
		}
		if s, err := DecodeReplSnapshot(payload); err == nil {
			if re := EncodeReplSnapshot(s); !bytes.Equal(re, payload) {
				t.Fatalf("snapshot decode/encode not canonical:\n in  %x\n out %x", payload, re)
			}
		}
	})
}
