package serve

import (
	"sync/atomic"
	"testing"
	"time"

	"anc"
)

// stubRepl is a minimal Replicator for exercising the server's
// replication surface without a real repl.Node.
type stubRepl struct {
	status   ReplStatus
	readOnly atomic.Bool
	promotes atomic.Int32
}

func (r *stubRepl) Status() ReplStatus { return r.status }
func (r *stubRepl) ReadOnly() bool     { return r.readOnly.Load() }
func (r *stubRepl) Promote() error {
	r.promotes.Add(1)
	r.readOnly.Store(false)
	return nil
}

// Stream pushes one status, then parks until the server stops it.
func (r *stubRepl) Stream(from uint64, traced bool, send func(payload []byte) error, stop <-chan struct{}) error {
	if err := send(EncodeReplStatus(&r.status)); err != nil {
		return err
	}
	<-stop
	return nil
}

// subscribe performs the subscription handshake on a test client and
// consumes the stub's initial status push.
func (c *testClient) subscribe(t *testing.T) {
	t.Helper()
	c.id++
	c.send(EncodeRequest(&Request{Op: OpReplSubscribe, ID: c.id, From: 0}))
	if resp := c.recv(OpReplSubscribe); resp.Err != nil {
		t.Fatalf("subscribe: %v", resp.Err)
	}
	msg := c.recvRepl(t)
	if msg.Status == nil {
		t.Fatalf("first push is not a status: %+v", msg)
	}
}

// recvRepl reads one push frame off a subscribed connection.
func (c *testClient) recvRepl(t *testing.T) *ReplMessage {
	t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := readFrame(c.br, DefaultMaxFrame)
	if err != nil {
		t.Fatalf("recv push: %v", err)
	}
	msg, err := DecodeReplMessage(payload)
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

// TestServeDrainNotifiesSubscribers is the graceful-shutdown regression
// test: a draining server must push the typed ErrCodeShuttingDown frame to
// its replication subscribers — the signal a follower uses to record
// "drain" instead of "crash" — and Shutdown must not hang on the parked
// stream.
func TestServeDrainNotifiesSubscribers(t *testing.T) {
	repl := &stubRepl{status: ReplStatus{Role: RolePrimary, Next: 42, PrimaryNext: 42}}
	s := startServer(t, anc.NewConcurrent(testNetwork(t)), Config{Repl: repl, Logf: t.Logf})
	c := dialTest(t, s.Addr().String())
	c.subscribe(t)

	done := make(chan struct{})
	go func() {
		shutdownServer(t, s)
		close(done)
	}()

	// The next push the subscriber sees must be the typed drain notice.
	deadline := time.Now().Add(10 * time.Second)
	var sawDrain bool
	for time.Now().Before(deadline) && !sawDrain {
		msg := c.recvRepl(t)
		if msg.Err != nil {
			if msg.Err.Code != ErrCodeShuttingDown {
				t.Fatalf("typed frame code %d, want shutting-down", msg.Err.Code)
			}
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Fatal("drain frame never arrived")
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung on a parked replication stream")
	}
	c.expectClosed()
}

// TestServeSubscribeWithoutRepl: a server with no Replicator refuses the
// subscription with a typed error and drops the connection — it never
// turns into a push stream.
func TestServeSubscribeWithoutRepl(t *testing.T) {
	s := startServer(t, anc.NewConcurrent(testNetwork(t)), Config{Logf: t.Logf})
	defer shutdownServer(t, s)
	c := dialTest(t, s.Addr().String())
	c.send(EncodeRequest(&Request{Op: OpReplSubscribe, ID: 1, From: 0}))
	resp := c.recv(OpReplSubscribe)
	if resp.Err == nil || resp.Err.Code != ErrCodeBadRequest {
		t.Fatalf("subscribe on repl-less server: %+v", resp)
	}
	c.expectClosed()
}

// TestServeReadOnlyGate: ingest at a follower-fronting server is refused
// with ErrCodeReadOnly; queries and replication control ops still work.
func TestServeReadOnlyGate(t *testing.T) {
	repl := &stubRepl{status: ReplStatus{Role: RoleFollower, Next: 10, PrimaryNext: 14, LagSeconds: 0.5}}
	repl.readOnly.Store(true)
	s := startServer(t, anc.NewConcurrent(testNetwork(t)), Config{Repl: repl, Logf: t.Logf})
	defer shutdownServer(t, s)
	c := dialTest(t, s.Addr().String())

	resp := c.rpcAllowErr(&Request{Op: OpActivateBatch, Batch: testStream(1, 4)[0]})
	if resp.Err == nil || resp.Err.Code != ErrCodeReadOnly {
		t.Fatalf("follower ingest: %+v", resp)
	}

	// Queries pass, and stats carry the replication health.
	stats := c.rpc(&Request{Op: OpStats}).Stats
	if stats.Role != RoleFollower {
		t.Fatalf("stats role %d, want follower", stats.Role)
	}
	if stats.ReplLagFrames != 4 {
		t.Fatalf("stats lag %d frames, want 4", stats.ReplLagFrames)
	}
	if rs := c.rpc(&Request{Op: OpReplStatus}).Repl; rs.Role != RoleFollower || rs.Next != 10 {
		t.Fatalf("repl status: %+v", rs)
	}

	// Promotion flips the gate.
	c.rpc(&Request{Op: OpPromote})
	if repl.promotes.Load() != 1 {
		t.Fatal("promote did not reach the replicator")
	}
	if resp := c.rpcAllowErr(&Request{Op: OpActivateBatch, Batch: testStream(1, 4)[0]}); resp.Err != nil {
		t.Fatalf("post-promotion ingest: %v", resp.Err)
	}
}

// TestServeReplOpsWithoutRepl: replication control ops on a repl-less
// server are typed bad requests, not crashes.
func TestServeReplOpsWithoutRepl(t *testing.T) {
	s := startServer(t, anc.NewConcurrent(testNetwork(t)), Config{Logf: t.Logf})
	defer shutdownServer(t, s)
	c := dialTest(t, s.Addr().String())
	for _, op := range []uint8{OpReplStatus, OpPromote} {
		resp := c.rpcAllowErr(&Request{Op: op})
		if resp.Err == nil || resp.Err.Code != ErrCodeBadRequest {
			t.Fatalf("op %d on repl-less server: %+v", op, resp)
		}
	}
}
