package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"anc"
)

// barbell builds two K5s joined by a bridge — the suite's standard small
// graph (10 nodes, 21 edges, 4 levels).
func barbell() (int, [][2]int) {
	var edges [][2]int
	for base := 0; base <= 5; base += 5 {
		for u := base; u < base+5; u++ {
			for v := u + 1; v < base+5; v++ {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	edges = append(edges, [2]int{4, 5})
	return 10, edges
}

func testNetwork(t *testing.T) *anc.Network {
	t.Helper()
	n, edges := barbell()
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.2
	cfg.Mu = 3
	net, err := anc.NewNetwork(n, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func canonClusters(cs [][]int) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		c = append([]int(nil), c...)
		sort.Ints(c)
		parts[i] = fmt.Sprint(c)
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// testStream returns nb batches of per-batch activations over the barbell
// bridge and clique edges with strictly increasing timestamps.
func testStream(nb, per int) [][]anc.Activation {
	_, edges := barbell()
	batches := make([][]anc.Activation, nb)
	t := 0.0
	for i := range batches {
		batch := make([]anc.Activation, per)
		for j := range batch {
			e := edges[(i*per+j)*7%len(edges)]
			t += 0.5
			batch[j] = anc.Activation{U: e[0], V: e[1], T: t}
		}
		batches[i] = batch
	}
	return batches
}

// testClient is a minimal raw-frame protocol speaker: enough to exercise
// the server without the client library, and low-level enough to send
// deliberately malformed traffic.
type testClient struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	id   uint64
}

func dialTest(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	c := &testClient{t: t, conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if err := writePreamble(conn, Version); err != nil {
		t.Fatal(err)
	}
	if _, err := readPreamble(c.br); err != nil {
		t.Fatal(err)
	}
	return c
}

// send frames and flushes a raw payload.
func (c *testClient) send(payload []byte) {
	c.t.Helper()
	if err := writeFrame(c.bw, payload); err != nil {
		c.t.Fatal(err)
	}
}

// recv reads one response frame for a request of the given op.
func (c *testClient) recv(op uint8) *Response {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := readFrame(c.br, DefaultMaxFrame)
	if err != nil {
		c.t.Fatalf("recv op %d: %v", op, err)
	}
	resp, err := DecodeResponse(op, payload)
	if err != nil {
		c.t.Fatalf("recv op %d: %v", op, err)
	}
	return resp
}

// rpc runs one request/response exchange and fails the test on an error
// reply.
func (c *testClient) rpc(req *Request) *Response {
	c.t.Helper()
	resp := c.rpcAllowErr(req)
	if resp.Err != nil {
		c.t.Fatalf("op %d: %v", req.Op, resp.Err)
	}
	return resp
}

// rpcAllowErr runs one exchange and returns the response even if it is a
// typed error reply.
func (c *testClient) rpcAllowErr(req *Request) *Response {
	c.t.Helper()
	c.id++
	req.ID = c.id
	c.send(EncodeRequest(req))
	resp := c.recv(req.Op)
	if resp.ID != req.ID {
		c.t.Fatalf("op %d: response id %d, want %d", req.Op, resp.ID, req.ID)
	}
	return resp
}

// expectClosed asserts the server closes the connection (EOF or reset).
func (c *testClient) expectClosed() {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := c.br.ReadByte(); err == nil {
		c.t.Fatal("connection still open, want closed")
	}
}

func startServer(t *testing.T, backend Backend, cfg Config) *Server {
	t.Helper()
	s := New(backend, cfg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return s
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServerRoundTrip drives every op over TCP and checks each reply
// against the backend queried directly.
func TestServerRoundTrip(t *testing.T) {
	backend := anc.NewConcurrent(testNetwork(t))
	s := startServer(t, backend, Config{})
	defer shutdownServer(t, s)
	c := dialTest(t, s.Addr().String())

	// Watch before ingest so cluster events accumulate server-side.
	c.rpc(&Request{Op: OpWatch, Node: 4})

	batches := testStream(4, 25)
	var sent uint32
	for _, b := range batches {
		resp := c.rpc(&Request{Op: OpActivateBatch, Batch: b})
		sent += uint32(len(b))
		if resp.Accepted != uint32(len(b)) {
			t.Fatalf("accepted %d, want %d", resp.Accepted, len(b))
		}
	}

	level := backend.SqrtLevel()
	if got, want := canonClusters(c.rpc(&Request{Op: OpClusters, Level: int32(level)}).Clusters),
		canonClusters(backend.Clusters(level)); got != want {
		t.Fatalf("clusters:\n got %s\n want %s", got, want)
	}
	if got, want := canonClusters(c.rpc(&Request{Op: OpEvenClusters, Level: int32(level)}).Clusters),
		canonClusters(backend.EvenClusters(level)); got != want {
		t.Fatalf("even clusters:\n got %s\n want %s", got, want)
	}
	for v := 0; v < 10; v++ {
		if got, want := c.rpc(&Request{Op: OpClusterOf, Node: uint32(v), Level: int32(level)}).Members,
			backend.ClusterOf(v, level); !reflect.DeepEqual(got, want) {
			t.Fatalf("clusterOf(%d): %v, want %v", v, got, want)
		}
		if got, want := c.rpc(&Request{Op: OpSmallestClusterOf, Node: uint32(v)}).Members,
			backend.SmallestClusterOf(v); !reflect.DeepEqual(got, want) {
			t.Fatalf("smallestClusterOf(%d): %v, want %v", v, got, want)
		}
	}
	if got, want := c.rpc(&Request{Op: OpEstimateDistance, U: 0, V: 9}).Value,
		backend.EstimateDistance(0, 9); got != want {
		t.Fatalf("distance %v, want %v", got, want)
	}
	if got, want := c.rpc(&Request{Op: OpEstimateAttraction, U: 4, V: 5}).Value,
		backend.EstimateAttraction(4, 5); got != want {
		t.Fatalf("attraction %v, want %v", got, want)
	}

	stats := c.rpc(&Request{Op: OpStats}).Stats
	want := backend.Stats()
	if stats.Nodes != uint32(want.Nodes) || stats.Edges != uint32(want.Edges) ||
		stats.Levels != uint32(want.Levels) || stats.SqrtLevel != uint32(want.SqrtLevel) ||
		stats.Activations != want.Activations || stats.Now != want.Now {
		t.Fatalf("stats %+v, want %+v", stats, want)
	}
	if stats.Activations != uint64(sent) {
		t.Fatalf("activations %d, want %d", stats.Activations, sent)
	}
	if stats.Draining {
		t.Fatal("draining before shutdown")
	}

	// DrainEvents empties the watch buffer; a second drain is empty.
	c.rpc(&Request{Op: OpDrainEvents})
	resp := c.rpc(&Request{Op: OpDrainEvents})
	if len(resp.Events) != 0 || resp.Dropped != 0 {
		t.Fatalf("second drain returned %d events, %d dropped", len(resp.Events), resp.Dropped)
	}
	c.rpc(&Request{Op: OpUnwatch, Node: 4})

	// Zoom session: open at √n, zoom to the finest level and past it.
	open := c.rpc(&Request{Op: OpViewOpen})
	if open.Level != int32(level) {
		t.Fatalf("view opened at %d, want %d", open.Level, level)
	}
	cur := open.Level
	for {
		zr := c.rpc(&Request{Op: OpViewZoomIn, View: open.View})
		if !zr.Moved {
			if zr.Level != cur {
				t.Fatalf("failed zoom moved level %d -> %d", cur, zr.Level)
			}
			break
		}
		if zr.Level != cur+1 {
			t.Fatalf("zoom in %d -> %d", cur, zr.Level)
		}
		cur = zr.Level
	}
	if cur != int32(backend.Levels()) {
		t.Fatalf("finest reachable level %d, want %d", cur, backend.Levels())
	}
	if got, want := canonClusters(c.rpc(&Request{Op: OpViewClusters, View: open.View}).Clusters),
		canonClusters(backend.Clusters(int(cur))); got != want {
		t.Fatalf("view clusters:\n got %s\n want %s", got, want)
	}
	if got, want := c.rpc(&Request{Op: OpViewClusterOf, View: open.View, Node: 4}).Members,
		backend.ClusterOf(4, int(cur)); !reflect.DeepEqual(got, want) {
		t.Fatalf("view clusterOf: %v, want %v", got, want)
	}
	c.rpc(&Request{Op: OpViewClose, View: open.View})
	if resp := c.rpcAllowErr(&Request{Op: OpViewClusters, View: open.View}); resp.Err == nil ||
		resp.Err.Code != ErrCodeBadRequest {
		t.Fatalf("closed view answered: %+v", resp)
	}
}

// TestServerAnalytics drives the analytics ops over TCP and checks every
// reply against the backend queried directly: global-only and per-cluster
// TieRank, the k validation, and the idempotent evolution cursor read.
func TestServerAnalytics(t *testing.T) {
	backend := anc.NewConcurrent(testNetwork(t))
	s := startServer(t, backend, Config{})
	defer shutdownServer(t, s)
	c := dialTest(t, s.Addr().String())

	for _, b := range testStream(4, 25) {
		c.rpc(&Request{Op: OpActivateBatch, Batch: b})
	}

	level := backend.SqrtLevel()
	if got, want := c.rpc(&Request{Op: OpTieRank, Level: int32(level), K: 5}).Rank,
		backend.TieRank(level, 5); !reflect.DeepEqual(got, want) {
		t.Fatalf("tierank(level=%d):\n got  %+v\n want %+v", level, got, want)
	}
	if got, want := c.rpc(&Request{Op: OpTieRank, Level: -1, K: 3}).Rank,
		backend.TieRank(-1, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("tierank(global):\n got  %+v\n want %+v", got, want)
	}
	if resp := c.rpcAllowErr(&Request{Op: OpTieRank, Level: -1, K: 0}); resp.Err == nil ||
		resp.Err.Code != ErrCodeBadRequest {
		t.Fatalf("tierank k=0 answered: %+v", resp)
	}

	wantEvs, wantSeq, wantDropped := backend.Evolution(0)
	resp := c.rpc(&Request{Op: OpEvolution})
	if !reflect.DeepEqual(resp.Evo, wantEvs) || resp.Seq != wantSeq || resp.Dropped != wantDropped {
		t.Fatalf("evolution:\n got  %v seq=%d dropped=%d\n want %v seq=%d dropped=%d",
			resp.Evo, resp.Seq, resp.Dropped, wantEvs, wantSeq, wantDropped)
	}
	// The read is non-draining: the same cursor returns the same events.
	again := c.rpc(&Request{Op: OpEvolution})
	if !reflect.DeepEqual(again.Evo, resp.Evo) || again.Seq != resp.Seq {
		t.Fatalf("evolution re-read differs: %v vs %v", again.Evo, resp.Evo)
	}
	// Reading from the newest sequence number returns nothing new.
	if tail := c.rpc(&Request{Op: OpEvolution, From: resp.Seq}); len(tail.Evo) != 0 {
		t.Fatalf("evolution from seq %d returned %d events", resp.Seq, len(tail.Evo))
	}
}

// TestServerRejectsBadBatch checks that a batch violating the ingest
// contract produces ErrCodeRejected and leaves the connection usable.
func TestServerRejectsBadBatch(t *testing.T) {
	backend := anc.NewConcurrent(testNetwork(t))
	s := startServer(t, backend, Config{})
	defer shutdownServer(t, s)
	c := dialTest(t, s.Addr().String())

	// (0, 9) is not an edge of the barbell.
	resp := c.rpcAllowErr(&Request{Op: OpActivateBatch, Batch: []anc.Activation{{U: 0, V: 9, T: 1}}})
	if resp.Err == nil || resp.Err.Code != ErrCodeRejected {
		t.Fatalf("bad batch: %+v", resp)
	}
	// The connection survives and the network is untouched.
	if st := c.rpc(&Request{Op: OpStats}).Stats; st.Activations != 0 {
		t.Fatalf("rejected batch applied: %d activations", st.Activations)
	}
}

// TestServerBadFrame checks that a CRC-corrupt frame gets a typed
// ErrCodeBadFrame reply and then the connection closes.
func TestServerBadFrame(t *testing.T) {
	backend := anc.NewConcurrent(testNetwork(t))
	s := startServer(t, backend, Config{})
	defer shutdownServer(t, s)
	c := dialTest(t, s.Addr().String())

	payload := EncodeRequest(&Request{Op: OpStats, ID: 1})
	var buf bytes.Buffer
	if err := writeFrame(bufio.NewWriter(&buf), payload); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0x01
	if _, err := c.conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	resp := c.recv(OpStats)
	if resp.Err == nil || resp.Err.Code != ErrCodeBadFrame {
		t.Fatalf("corrupt frame: %+v", resp)
	}
	c.expectClosed()
}

// TestServerFrameTooBig checks that an oversized announced length gets a
// typed ErrCodeFrameTooBig reply and then the connection closes.
func TestServerFrameTooBig(t *testing.T) {
	backend := anc.NewConcurrent(testNetwork(t))
	s := startServer(t, backend, Config{MaxFrame: 1024})
	defer shutdownServer(t, s)
	c := dialTest(t, s.Addr().String())

	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<20)
	if _, err := c.conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	resp := c.recv(OpStats)
	if resp.Err == nil || resp.Err.Code != ErrCodeFrameTooBig {
		t.Fatalf("oversized frame: %+v", resp)
	}
	c.expectClosed()
}

// TestServerBadRequest checks that an intact frame with a garbage body
// gets ErrCodeBadRequest and the connection keeps working.
func TestServerBadRequest(t *testing.T) {
	backend := anc.NewConcurrent(testNetwork(t))
	s := startServer(t, backend, Config{})
	defer shutdownServer(t, s)
	c := dialTest(t, s.Addr().String())

	c.send([]byte{0xEE}) // unknown op, truncated header
	resp := c.recv(OpStats)
	if resp.Err == nil || resp.Err.Code != ErrCodeBadRequest {
		t.Fatalf("garbage request: %+v", resp)
	}
	// Framing stayed in sync: a real request still works.
	if st := c.rpc(&Request{Op: OpStats}).Stats; st.Nodes != 10 {
		t.Fatalf("stats after bad request: %+v", st)
	}
}

// slowBackend delays or blocks chosen queries to force deadline and
// overload paths deterministically.
type slowBackend struct {
	Backend
	block chan struct{} // Clusters waits for this channel to close
}

func (b *slowBackend) Clusters(level int) [][]int {
	<-b.block
	return b.Backend.Clusters(level)
}

// TestServerDeadline checks that a query overrunning the request deadline
// gets ErrCodeDeadline instead of hanging the connection.
func TestServerDeadline(t *testing.T) {
	block := make(chan struct{})
	backend := &slowBackend{Backend: anc.NewConcurrent(testNetwork(t)), block: block}
	s := startServer(t, backend, Config{RequestTimeout: 50 * time.Millisecond})
	c := dialTest(t, s.Addr().String())

	resp := c.rpcAllowErr(&Request{Op: OpClusters, Level: 2})
	if resp.Err == nil || resp.Err.Code != ErrCodeDeadline {
		t.Fatalf("slow query: %+v", resp)
	}
	// The connection survives: a fast op still answers.
	if st := c.rpc(&Request{Op: OpStats}).Stats; st.Nodes != 10 {
		t.Fatalf("stats after deadline: %+v", st)
	}
	close(block) // release the runaway query before shutdown
	shutdownServer(t, s)
}

// TestServerOverloaded checks that when every admission slot is held past
// the deadline, the next request is refused with ErrCodeOverloaded.
func TestServerOverloaded(t *testing.T) {
	block := make(chan struct{})
	backend := &slowBackend{Backend: anc.NewConcurrent(testNetwork(t)), block: block}
	s := startServer(t, backend, Config{MaxInflight: 1, RequestTimeout: 200 * time.Millisecond})
	c1 := dialTest(t, s.Addr().String())
	c2 := dialTest(t, s.Addr().String())

	// c1's query takes the only slot and blocks past its deadline (the
	// slot is released only when the query finishes, so the runaway query
	// keeps counting against MaxInflight).
	done := make(chan *Response, 1)
	go func() {
		done <- c1.rpcAllowErr(&Request{Op: OpClusters, Level: 2})
	}()
	// Wait until the slot is actually held before contending for it.
	for i := 0; s.inflight.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("first query never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	resp := c2.rpcAllowErr(&Request{Op: OpStats})
	if resp.Err == nil || resp.Err.Code != ErrCodeOverloaded {
		t.Fatalf("second query: %+v", resp)
	}
	if resp := <-done; resp.Err == nil || resp.Err.Code != ErrCodeDeadline {
		t.Fatalf("first query: %+v", resp)
	}
	close(block)
	shutdownServer(t, s)
}

// TestHandleWhileDraining checks the typed ShuttingDown reply a request
// receives once the drain has begun.
func TestHandleWhileDraining(t *testing.T) {
	backend := anc.NewConcurrent(testNetwork(t))
	s := New(backend, Config{})
	s.draining.Store(true)
	payload, _ := s.handle(&connState{views: map[uint32]int{}}, &Request{Op: OpStats, ID: 7})
	resp, err := DecodeResponse(OpStats, payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7 || resp.Err == nil || resp.Err.Code != ErrCodeShuttingDown {
		t.Fatalf("draining reply: %+v", resp)
	}
}

// blockingIngest blocks ActivateBatch until released, so a drain can be
// started with batches provably still in flight and queued.
type blockingIngest struct {
	Backend
	gate chan struct{}
}

func (b *blockingIngest) ActivateBatch(batch []anc.Activation) error {
	<-b.gate
	return b.Backend.ActivateBatch(batch)
}

// TestServerDrainFlushesQueue checks the graceful-drain contract: batches
// accepted into the queue before Shutdown are committed and acknowledged,
// the drain never hangs, and afterwards the port is closed.
func TestServerDrainFlushesQueue(t *testing.T) {
	gate := make(chan struct{})
	inner := anc.NewConcurrent(testNetwork(t))
	backend := &blockingIngest{Backend: inner, gate: gate}
	s := startServer(t, backend, Config{RequestTimeout: 30 * time.Second})
	c1 := dialTest(t, s.Addr().String())
	c2 := dialTest(t, s.Addr().String())

	batches := testStream(2, 10)
	// Requests on one connection are handled sequentially, so the two
	// batches come from two connections: the first blocks in the writer,
	// the second sits in the ingest queue.
	c1.send(EncodeRequest(&Request{Op: OpActivateBatch, ID: 1, Batch: batches[0]}))
	for i := 0; s.inflight.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("first batch never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	c2.send(EncodeRequest(&Request{Op: OpActivateBatch, ID: 2, Batch: batches[1]}))
	for i := 0; s.queued.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("second batch never queued")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	for i := 0; !s.draining.Load(); i++ {
		if i > 1000 {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate) // release the writer mid-drain

	// Both batches were accepted before the drain began, so both must be
	// committed and acknowledged.
	for i, c := range []*testClient{c1, c2} {
		resp := c.recv(OpActivateBatch)
		if resp.Err != nil {
			t.Fatalf("batch %d during drain: %v", i, resp.Err)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := inner.Stats().Activations; got != 20 {
		t.Fatalf("%d activations applied, want 20", got)
	}
	if _, err := net.DialTimeout("tcp", s.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServeRecoverDeterminism is the crash-recovery proof at test scale: a
// served ingest stream killed mid-way and recovered through the WAL must
// end at exactly the clustering of an uninterrupted in-process run.
func TestServeRecoverDeterminism(t *testing.T) {
	batches := testStream(12, 20)

	// Uninterrupted in-process reference.
	ref := testNetwork(t)
	for _, b := range batches {
		if err := ref.ActivateBatch(b); err != nil {
			t.Fatal(err)
		}
	}

	dir := filepath.Join(t.TempDir(), "wal")
	d, err := anc.NewDurable(testNetwork(t), dir, anc.DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, d, Config{})
	c := dialTest(t, s.Addr().String())
	const k = 7 // crash after this many acknowledged batches
	for _, b := range batches[:k] {
		c.rpc(&Request{Op: OpActivateBatch, Batch: b})
	}
	s.Kill() // crash-style: no checkpoint; recovery must replay the WAL
	c.expectClosed()

	rec, err := anc.Recover(dir, anc.DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Stats().Activations; got != uint64(k*20) {
		t.Fatalf("recovered %d activations, want %d", got, k*20)
	}
	s2 := startServer(t, rec, Config{})
	c2 := dialTest(t, s2.Addr().String())
	for _, b := range batches[k:] {
		c2.rpc(&Request{Op: OpActivateBatch, Batch: b})
	}
	level := ref.SqrtLevel()
	got := canonClusters(c2.rpc(&Request{Op: OpClusters, Level: int32(level)}).Clusters)
	want := canonClusters(ref.Clusters(level))
	if got != want {
		t.Fatalf("post-recovery clusters differ:\n got %s\n want %s", got, want)
	}
	shutdownServer(t, s2)
}

// TestServerHandshakeRejectsBadMagic checks that a client with the wrong
// magic is cut off at the preamble.
func TestServerHandshakeRejectsBadMagic(t *testing.T) {
	backend := anc.NewConcurrent(testNetwork(t))
	s := startServer(t, backend, Config{})
	defer shutdownServer(t, s)

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("NOPE\x01\x00\x00\x00")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatalf("read: %v", err)
	}
}
