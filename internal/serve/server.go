package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"anc"
	"anc/internal/obs"
	"anc/internal/obs/trace"
)

// Backend is the facade the server fronts: every method must be safe for
// concurrent use. ConcurrentNetwork and DurableNetwork both satisfy it;
// with a DurableNetwork the served stream is additionally write-ahead
// logged, and Shutdown checkpoints before closing.
type Backend interface {
	ActivateBatch(batch []anc.Activation) error
	Clusters(level int) [][]int
	EvenClusters(level int) [][]int
	ClusterOf(v, level int) []int
	SmallestClusterOf(v int) []int
	EstimateDistance(u, v int) float64
	EstimateAttraction(u, v int) float64
	Watch(v int)
	Unwatch(v int)
	DrainEvents() ([]anc.ClusterEvent, uint64)
	TieRank(level, k int) anc.TieRankResult
	Evolution(since uint64) ([]anc.EvolutionEvent, uint64, uint64)
	Stats() anc.Stats
}

// durableBackend is the optional durability surface a Backend may expose
// (DurableNetwork does); Shutdown uses it for the final checkpoint+close,
// Kill for the crash-style close.
type durableBackend interface {
	Checkpoint() error
	Close() error
}

// Replicator is the replication surface a server exposes when
// Config.Repl is set (repl.Node implements it for both roles). Status
// and ReadOnly must be safe for concurrent use; Stream is called once
// per subscriber connection, on that connection's goroutine.
type Replicator interface {
	// Status reports the node's replication health — the body of
	// OpReplStatus replies and the replication fields of OpStats.
	Status() ReplStatus
	// ReadOnly reports whether ingest must be refused (an unpromoted
	// follower).
	ReadOnly() bool
	// Promote re-enables ingest on a follower; on a primary it is a
	// harmless no-op. An error is answered with ErrCodeRejected.
	Promote() error
	// Stream serves one replication subscription from frame index from:
	// it calls send with encoded push payloads (EncodeReplFrames /
	// EncodeReplStatus / EncodeReplSnapshot) until send fails or stop
	// closes. traced reports whether the subscriber negotiated protocol
	// version >= 3 and may therefore receive the per-frame trace-ID
	// section on ReplFrames (a v2 follower's strict decoder would reject
	// it). The error is for the connection log only — the subscriber
	// learns about the end of the stream from the close (or the typed
	// drain frame the server appends).
	Stream(from uint64, traced bool, send func(payload []byte) error, stop <-chan struct{}) error
}

// TracedBackend is the optional tracing surface a Backend may expose
// (DurableNetwork does, through repl.Node and the ancserve ID
// translator): an ActivateBatch that records its WAL-append, fsync and
// core-apply stages as children of the request's span. The writer
// goroutine uses it only for requests that are actually being traced.
type TracedBackend interface {
	ActivateBatchTraced(batch []anc.Activation, sp trace.SpanHandle) error
}

// Config tunes a Server. The zero value is usable; every field has a
// serving-grade default.
type Config struct {
	// MaxInflight is the admission gate: the number of requests allowed
	// to execute at once across all connections (default 64). Requests
	// that cannot be admitted within the request deadline are answered
	// with ErrCodeOverloaded.
	MaxInflight int
	// IngestQueue is the capacity of the bounded channel funneling every
	// ActivateBatch into the single writer goroutine (default 64
	// batches). A full queue is backpressure: the submitting request
	// waits until its deadline, then fails with ErrCodeOverloaded.
	IngestQueue int
	// RequestTimeout is the per-request deadline covering admission,
	// queueing and execution (default 5s).
	RequestTimeout time.Duration
	// MaxFrame bounds request and response payloads (default
	// DefaultMaxFrame).
	MaxFrame int
	// MaxViews caps zoom sessions per connection (default 64).
	MaxViews int
	// Logf, when non-nil, receives connection-level log lines.
	Logf func(format string, args ...interface{})
	// Log, when non-nil, is the structured logger for the server's own
	// lines (slow requests, handshake failures, stream errors). When nil
	// it is derived from Logf, so existing callers keep their sink.
	Log *obs.Logger

	// Obs, when non-nil, attaches the server's metrics (anc_serve_*
	// families: per-op request counts, error counts by code, handling
	// latency, frame bytes, connection/inflight/queue gauges) to the
	// registry. Nil — the default — keeps observability off at near zero
	// cost. Pass the same registry to the backend's layers (DurableConfig.Obs
	// or Network.Instrument) so one scrape covers the whole process.
	Obs *obs.Registry
	// MetricsAddr, when non-empty, starts an HTTP listener on that address
	// (e.g. "127.0.0.1:9100") serving /metrics (Prometheus text exposition
	// of Obs), /healthz (a JSON health summary from the backend's Stats),
	// /debug/traces (the Tracer's flight recorder, when Tracer is set) and
	// net/http/pprof under /debug/pprof/. The listener stops with the
	// server on both Shutdown and Kill.
	MetricsAddr string
	// Tracer, when non-nil, records request traces: head-sampled spans
	// covering the whole request (with queue-wait, WAL, fsync, repair and
	// reply children on the ingest path), kept in the tracer's flight
	// recorder and served on /debug/traces and OpTraces. Requests carrying
	// a wire trace context are always traced. Nil keeps the hot path at
	// zero allocations.
	Tracer *trace.Tracer
	// SlowQuery, when positive, counts every request whose handling takes
	// at least this long (anc_serve_slow_requests_total) and logs it
	// through Logf, rate-limited to one line per second so a latency storm
	// cannot flood the log.
	SlowQuery time.Duration

	// Repl, when non-nil, enables the replication ops: OpReplSubscribe
	// streams WAL frames to followers, OpReplStatus/OpStats report
	// replication health, OpPromote flips a follower to accepting writes,
	// and ingest is refused with ErrCodeReadOnly while Repl.ReadOnly().
	Repl Replicator
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.IngestQueue <= 0 {
		c.IngestQueue = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.MaxViews <= 0 {
		c.MaxViews = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	if c.Log == nil {
		c.Log = obs.NewLogger("serve", obs.LevelInfo, c.Logf)
	}
	return c
}

// ingestReq is one batch waiting for the writer goroutine. done is
// buffered so the writer never blocks on a requester that gave up.
// enq/qspan/span carry the request's queue-wait instrumentation: enq is
// the enqueue instant (zero when neither metrics nor tracing are on),
// qspan the open "queue.wait" child the writer ends on dequeue, span the
// request's root for the backend's WAL/apply children.
type ingestReq struct {
	batch []anc.Activation
	done  chan error
	enq   time.Time
	qspan trace.SpanHandle
	span  trace.SpanHandle
}

// Server owns a listener, one writer goroutine, and a goroutine per
// connection. Queries execute concurrently under the backend's shared
// lock; all ingest funnels through the writer so the WAL group-commit
// path sees one batch at a time.
type Server struct {
	cfg     Config
	backend Backend

	lis      net.Listener
	ingestCh chan ingestReq
	gate     chan struct{}

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	draining   atomic.Bool
	killed     atomic.Bool
	inflight   atomic.Int32
	queued     atomic.Int32
	acceptDone chan struct{}
	writerDone chan struct{}
	drainCh    chan struct{} // closed at the start of Shutdown/Kill: the stop signal for streams
	drainOnce  sync.Once
	connWG     sync.WaitGroup
	started    bool
	stopOnce   sync.Once

	startedAt   time.Time      // set by Start; the base of healthz's uptime_seconds
	met         *serverMetrics // nil unless cfg.Obs was set; all methods nil-safe
	metricsLis  net.Listener
	metricsSrv  *http.Server
	metricsDone chan struct{}
	metricsOnce sync.Once
	slowLogAt   atomic.Int64 // unix nanos of the last slow-request log line
}

// New builds a server over backend. Call Start to begin serving.
func New(backend Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		backend:    backend,
		ingestCh:   make(chan ingestReq, cfg.IngestQueue),
		gate:       make(chan struct{}, cfg.MaxInflight),
		conns:      map[net.Conn]struct{}{},
		acceptDone: make(chan struct{}),
		writerDone: make(chan struct{}),
		drainCh:    make(chan struct{}),
	}
	s.met = newServerMetrics(cfg.Obs, s)
	return s
}

// Start listens on addr (e.g. "127.0.0.1:0" for an ephemeral port) and
// serves in background goroutines until Shutdown or Kill.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.startedAt = time.Now()
	if s.cfg.MetricsAddr != "" {
		mlis, err := net.Listen("tcp", s.cfg.MetricsAddr)
		if err != nil {
			lis.Close()
			return fmt.Errorf("serve: metrics listener: %w", err)
		}
		s.metricsLis = mlis
		var traces http.Handler
		if s.cfg.Tracer != nil {
			traces = s.cfg.Tracer.Handler()
		}
		s.metricsSrv = &http.Server{Handler: obs.NewMux(s.cfg.Obs, http.HandlerFunc(s.healthz), traces)}
		s.metricsDone = make(chan struct{})
		go func() {
			defer close(s.metricsDone)
			s.metricsSrv.Serve(mlis)
		}()
	}
	s.lis = lis
	s.started = true
	go s.acceptLoop()
	go s.writerLoop()
	return nil
}

// Addr returns the bound listener address (valid after Start).
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// MetricsAddr returns the bound metrics listener address, or "" when
// Config.MetricsAddr was empty (valid after Start).
func (s *Server) MetricsAddr() string {
	if s.metricsLis == nil {
		return ""
	}
	return s.metricsLis.Addr().String()
}

// healthz answers the metrics listener's health endpoint: one JSON object
// from a single Stats read, cheap enough for aggressive probe intervals.
func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	bs := s.backend.Stats()
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Status             string  `json:"status"`
		Version            string  `json:"version"`
		UptimeSeconds      float64 `json:"uptime_seconds"`
		Goroutines         int     `json:"goroutines"`
		Nodes              int     `json:"nodes"`
		Edges              int     `json:"edges"`
		Activations        uint64  `json:"activations"`
		Now                float64 `json:"now"`
		WatcherDrops       uint64  `json:"watcher_drops"`
		EvolutionDrops     uint64  `json:"evolution_drops"`
		Inflight           int32   `json:"inflight"`
		Queued             int32   `json:"queued"`
		CacheHits          uint64  `json:"cache_hits"`
		CacheMisses        uint64  `json:"cache_misses"`
		CacheInvalidations uint64  `json:"cache_invalidations"`
	}{status, obs.BuildVersion, time.Since(s.startedAt).Seconds(), runtime.NumGoroutine(),
		bs.Nodes, bs.Edges, bs.Activations, bs.Now, bs.WatcherDrops,
		bs.EvolutionDrops, s.inflight.Load(), s.queued.Load(),
		bs.CacheHits, bs.CacheMisses, bs.CacheInvalidations})
}

// stopMetrics closes the metrics HTTP listener and waits for its serve
// goroutine — shared by Shutdown and Kill, idempotent so both may run.
func (s *Server) stopMetrics() {
	s.metricsOnce.Do(func() {
		if s.metricsSrv == nil {
			return
		}
		s.metricsSrv.Close() //anclint:ignore droppederr teardown of the scrape listener loses no state
		<-s.metricsDone
	})
}

func (s *Server) acceptLoop() {
	defer close(s.acceptDone)
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed: drain or kill
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.serveConn(conn)
	}
}

// writerLoop is the single writer goroutine: every batch from every
// connection is applied here, one at a time, through the backend's
// group-commit path (one WAL frame + fsync per batch on a
// DurableNetwork). It drains the queue fully on shutdown so every batch
// that entered the queue before the drain is committed, and aborts
// without applying on Kill.
func (s *Server) writerLoop() {
	defer close(s.writerDone)
	tb, _ := s.backend.(TracedBackend)
	for req := range s.ingestCh {
		s.queued.Add(-1)
		if !req.enq.IsZero() {
			s.met.queueWait(time.Since(req.enq).Seconds())
		}
		req.qspan.End()
		if s.killed.Load() {
			req.done <- &WireError{Code: ErrCodeShuttingDown, Msg: "server killed"}
			continue
		}
		if req.span.Active() && tb != nil {
			req.done <- tb.ActivateBatchTraced(req.batch, req.span)
		} else {
			req.done <- s.backend.ActivateBatch(req.batch)
		}
	}
}

// Shutdown gracefully drains the server: stop accepting, answer new
// requests with ErrCodeShuttingDown, flush the ingest queue through the
// writer, checkpoint and close a durable backend, then close every
// connection. It returns ctx.Err() if the drain did not finish in time
// (the server is then torn down non-gracefully).
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.started {
		return nil
	}
	s.draining.Store(true)
	// Stop replication streams first: their connection goroutines are
	// parked in Stream, not readFrame, so without this signal connWG.Wait
	// would hang. Each stream then sends its typed drain frame (so
	// followers can tell drain from crash) before the connection closes.
	s.drainOnce.Do(func() { close(s.drainCh) })
	s.lis.Close()
	<-s.acceptDone

	// Unblock connection readers parked in readFrame without yanking the
	// write side: in-flight responses (including the ShuttingDown replies)
	// still get out.
	s.mu.Lock()
	for conn := range s.conns {
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseRead()
		} else {
			conn.Close() //anclint:ignore droppederr read-side teardown of a draining connection
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		s.stopOnce.Do(func() { close(s.ingestCh) })
		<-s.writerDone
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.closeConns() // give up on stragglers
	}

	if d, ok := s.backend.(durableBackend); ok {
		if cerr := d.Checkpoint(); cerr != nil && err == nil {
			err = cerr
		}
		if cerr := d.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.closeConns()
	s.stopMetrics()
	return err
}

// Kill stops the server abruptly — the crash hook for recovery tests and
// the unclean-exit path: the listener and every connection close
// immediately, queued batches are dropped unapplied, and a durable
// backend is closed WITHOUT a checkpoint so the next start must recover
// by replaying the WAL.
func (s *Server) Kill() {
	if !s.started {
		return
	}
	s.killed.Store(true)
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
	s.lis.Close() //anclint:ignore droppederr crash-style stop; the listener error is unrecoverable anyway
	<-s.acceptDone
	s.closeConns()
	s.connWG.Wait()
	s.stopOnce.Do(func() { close(s.ingestCh) })
	<-s.writerDone
	if d, ok := s.backend.(durableBackend); ok {
		d.Close() //anclint:ignore droppederr crash-style close; the WAL is already fsynced per policy
	}
	s.stopMetrics()
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.Close() //anclint:ignore droppederr teardown of an abandoned connection loses no state
	}
	s.conns = map[net.Conn]struct{}{}
}

// connState is the per-connection session: open zoom views and their
// levels. It has its own lock because a query that outlived its deadline
// keeps running in the background and may touch the session concurrently
// with the connection's next request.
type connState struct {
	mu       sync.Mutex
	views    map[uint32]int
	nextView uint32
}

// viewLevel reads a view's level under the session lock.
func (st *connState) viewLevel(id uint32) (int, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	level, ok := st.views[id]
	return level, ok
}

func (s *Server) serveConn(conn net.Conn) {
	s.met.connOpened()
	defer s.connWG.Done()
	defer func() {
		s.met.connClosed()
		conn.Close() //anclint:ignore droppederr the connection carries no durable state
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	// Handshake: the client speaks first; a silent or incompatible peer
	// is cut off rather than parked forever. The server answers with
	// min(client, own) version, so old clients keep working untraced.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	peerVer, err := readPreamble(br)
	if err != nil {
		s.cfg.Log.Warn("handshake failed", "remote", conn.RemoteAddr(), "err", err)
		return
	}
	conn.SetReadDeadline(time.Time{})
	ver := negotiate(peerVer)
	if err := writePreamble(conn, ver); err != nil {
		return
	}

	st := &connState{views: map[uint32]int{}}
	for {
		payload, err := readFrame(br, s.cfg.MaxFrame)
		if err != nil {
			// Framing violations get a typed reply before the close;
			// anything else (EOF, reset, drain's CloseRead) just ends the
			// connection.
			var fe *frameError
			if errors.As(err, &fe) {
				s.writeReply(bw, s.errReply(0, fe.code, fe.msg))
			}
			return
		}
		s.met.readBytes(frameHeaderSize + len(payload))
		req, err := DecodeRequest(payload)
		if err != nil {
			// The frame was intact (length+CRC verified), so framing is
			// still in sync: report and keep the connection.
			if werr := s.writeReply(bw, s.errReply(0, ErrCodeBadRequest, err.Error())); werr != nil {
				return
			}
			continue
		}
		if req.Op == OpReplSubscribe {
			// A subscription repurposes the connection as a one-way push
			// stream; when serveSubscribe returns the stream is over and
			// framing state is unknown, so the connection closes.
			s.serveSubscribe(conn, bw, req, ver >= 3)
			return
		}
		payload, sp := s.handle(st, req)
		if err := s.reply(bw, payload, sp); err != nil {
			return
		}
	}
}

// reply writes one response frame, recording the write as the trace's
// "reply" child and the anc_serve_reply_seconds stage when instrumented;
// it then finishes the request's root span, failing it for error
// replies. The untraced, unobserved path stays clock-free.
func (s *Server) reply(bw *bufio.Writer, payload []byte, sp trace.SpanHandle) error {
	if s.met == nil && !sp.Active() {
		return s.writeReply(bw, payload)
	}
	child := sp.StartChild("reply")
	start := time.Now()
	err := s.writeReply(bw, payload)
	s.met.replyTime(time.Since(start).Seconds())
	child.End()
	if len(payload) > 0 && payload[0] == statusErr {
		sp.Fail()
	}
	sp.End()
	return err
}

// serveSubscribe runs one replication stream on the subscriber's
// connection goroutine. It bypasses the admission gate — a stream is not
// a request and must not pin a MaxInflight slot for its whole life — and
// ends on send failure (peer gone, Kill) or on s.drainCh, in which case
// a graceful drain appends the typed ErrCodeShuttingDown frame so the
// follower records "drain", not "crash".
func (s *Server) serveSubscribe(conn net.Conn, bw *bufio.Writer, req *Request, traced bool) {
	s.met.request(req.Op)
	if s.cfg.Repl == nil {
		s.writeReply(bw, s.errReply(req.ID, ErrCodeBadRequest, "replication not enabled"))
		return
	}
	if s.draining.Load() {
		s.writeReply(bw, s.errReply(req.ID, ErrCodeShuttingDown, "server is draining"))
		return
	}
	if err := s.writeReply(bw, EncodeResponse(OpReplSubscribe, &Response{ID: req.ID})); err != nil {
		return
	}
	send := func(payload []byte) error {
		// A per-frame write deadline so a wedged follower cannot park this
		// goroutine past Shutdown's patience.
		conn.SetWriteDeadline(time.Now().Add(s.cfg.RequestTimeout))
		err := s.writeReply(bw, payload)
		conn.SetWriteDeadline(time.Time{})
		return err
	}
	if err := s.cfg.Repl.Stream(req.From, traced, send, s.drainCh); err != nil {
		s.cfg.Log.Warn("replication stream ended", "remote", conn.RemoteAddr(), "err", err)
	}
	if s.draining.Load() && !s.killed.Load() {
		send(s.errReply(0, ErrCodeShuttingDown, "server is draining"))
	}
}

// writeReply frames one response payload, counting the bytes put on the
// wire.
func (s *Server) writeReply(bw *bufio.Writer, payload []byte) error {
	s.met.wroteBytes(frameHeaderSize + len(payload))
	return writeFrame(bw, payload)
}

// errReply encodes a typed error reply, counting it by code name so error
// rates are visible per class (anc_serve_errors_total). Every server-
// originated error reply is minted here.
func (s *Server) errReply(id uint64, code uint8, msg string) []byte {
	s.met.errored(code)
	return EncodeError(id, code, msg)
}

// handle counts, times and dispatches one request: the wrapper observes
// whole handling latency (admission wait included) into the ingest or
// query histogram, applies the slow-request threshold, and opens the
// request's root span when the tracer samples it (or the wire context
// demands it). The caller finishes the span after writing the reply.
// When observability, tracing and the threshold are all off it never
// reads the clock.
func (s *Server) handle(st *connState, req *Request) ([]byte, trace.SpanHandle) {
	s.met.request(req.Op)
	var sp trace.SpanHandle
	if s.cfg.Tracer.ShouldTrace(req.Trace) {
		sp = s.cfg.Tracer.Start("serve."+OpName(req.Op), req.Trace)
	}
	if s.met == nil && s.cfg.SlowQuery <= 0 && !sp.Active() {
		return s.handleRequest(st, req, sp), sp
	}
	start := time.Now()
	payload := s.handleRequest(st, req, sp)
	elapsed := time.Since(start)
	s.met.observe(req.Op, elapsed.Seconds())
	if s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery {
		s.met.slow()
		s.logSlow(req.Op, elapsed, sp.TraceID())
	}
	return payload, sp
}

// logSlow emits one rate-limited (1/s) log line for a slow request; the
// CAS keeps concurrent connections from stampeding the log while the
// counter still records every occurrence. traceID ties the line to the
// flight recorder (slow traces are always kept) — zero when untraced.
func (s *Server) logSlow(op uint8, elapsed time.Duration, traceID uint64) {
	now := time.Now().UnixNano()
	last := s.slowLogAt.Load()
	if now-last < int64(time.Second) || !s.slowLogAt.CompareAndSwap(last, now) {
		return
	}
	s.cfg.Log.Warn("slow request",
		"op", OpName(op), "took", elapsed, "threshold", s.cfg.SlowQuery,
		"trace", trace.FormatID(traceID))
}

// handleRequest executes one request and returns the encoded response
// payload. Responses that would overflow MaxFrame are replaced by an
// ErrCodeInternal reply so the client's frame reader never faces an
// oversized frame.
func (s *Server) handleRequest(st *connState, req *Request, sp trace.SpanHandle) []byte {
	deadline := time.NewTimer(s.cfg.RequestTimeout)
	defer deadline.Stop()

	if s.draining.Load() {
		return s.errReply(req.ID, ErrCodeShuttingDown, "server is draining")
	}

	// Admission gate: a slot must free up before the deadline.
	select {
	case s.gate <- struct{}{}:
	case <-deadline.C:
		return s.errReply(req.ID, ErrCodeOverloaded,
			fmt.Sprintf("no admission slot within %v", s.cfg.RequestTimeout))
	}
	s.inflight.Add(1)

	if req.Op == OpActivateBatch {
		defer func() { <-s.gate; s.inflight.Add(-1) }()
		return s.handleIngest(req, deadline, sp)
	}

	// Queries run in their own goroutine so an overlong one cannot hold
	// this connection past the deadline; the gate slot is released when
	// the query actually finishes, so runaway queries still count against
	// MaxInflight.
	result := make(chan []byte, 1)
	go func() {
		defer func() { <-s.gate; s.inflight.Add(-1) }()
		result <- s.execQuery(st, req)
	}()
	select {
	case payload := <-result:
		if len(payload) > s.cfg.MaxFrame {
			return s.errReply(req.ID, ErrCodeInternal,
				fmt.Sprintf("response of %d bytes exceeds max frame %d", len(payload), s.cfg.MaxFrame))
		}
		return payload
	case <-deadline.C:
		return s.errReply(req.ID, ErrCodeDeadline,
			fmt.Sprintf("query did not finish within %v", s.cfg.RequestTimeout))
	}
}

// handleIngest funnels a batch into the writer goroutine and waits for
// the group commit. Backpressure is the bounded queue: when it stays full
// past the deadline the batch is refused, not applied late and silently.
func (s *Server) handleIngest(req *Request, deadline *time.Timer, sp trace.SpanHandle) []byte {
	if s.cfg.Repl != nil && s.cfg.Repl.ReadOnly() {
		return s.errReply(req.ID, ErrCodeReadOnly, "follower is read-only; ingest at the primary")
	}
	if len(req.Batch) == 0 {
		return EncodeResponse(OpActivateBatch, &Response{ID: req.ID})
	}
	ir := ingestReq{batch: req.Batch, done: make(chan error, 1)}
	if s.met != nil || sp.Active() {
		ir.enq = time.Now()
		ir.qspan = sp.StartChild("queue.wait")
		ir.span = sp
	}
	select {
	case s.ingestCh <- ir:
		s.queued.Add(1)
	case <-deadline.C:
		ir.qspan.End()
		return s.errReply(req.ID, ErrCodeOverloaded,
			fmt.Sprintf("ingest queue full for %v", s.cfg.RequestTimeout))
	}
	select {
	case err := <-ir.done:
		if err != nil {
			var we *WireError
			if errors.As(err, &we) {
				return s.errReply(req.ID, we.Code, we.Msg)
			}
			return s.errReply(req.ID, ErrCodeRejected, err.Error())
		}
		return EncodeResponse(OpActivateBatch, &Response{ID: req.ID, Accepted: uint32(len(req.Batch))})
	case <-deadline.C:
		// The batch is queued and WILL be committed by the writer; only
		// the acknowledgement is late. Report the deadline so the client
		// can treat the batch as in-doubt (at-least-once).
		return s.errReply(req.ID, ErrCodeDeadline,
			fmt.Sprintf("commit not acknowledged within %v", s.cfg.RequestTimeout))
	}
}

// execQuery dispatches a non-ingest request against the backend.
func (s *Server) execQuery(st *connState, req *Request) []byte {
	resp := &Response{ID: req.ID}
	switch req.Op {
	case OpClusters:
		resp.Clusters = s.backend.Clusters(int(req.Level))
	case OpEvenClusters:
		resp.Clusters = s.backend.EvenClusters(int(req.Level))
	case OpClusterOf:
		resp.Members = s.backend.ClusterOf(int(req.Node), int(req.Level))
	case OpSmallestClusterOf:
		resp.Members = s.backend.SmallestClusterOf(int(req.Node))
	case OpEstimateDistance:
		resp.Value = s.backend.EstimateDistance(int(req.U), int(req.V))
	case OpEstimateAttraction:
		resp.Value = s.backend.EstimateAttraction(int(req.U), int(req.V))
	case OpStats:
		bs := s.backend.Stats()
		resp.Stats = StatsReply{
			Nodes:       uint32(bs.Nodes),
			Edges:       uint32(bs.Edges),
			Levels:      uint32(bs.Levels),
			SqrtLevel:   uint32(bs.SqrtLevel),
			Activations: bs.Activations,
			Now:         bs.Now,
			Inflight:    uint32(s.inflight.Load()),
			Queued:      uint32(s.queued.Load()),
			Draining:    s.draining.Load(),
		}
		if s.cfg.Repl != nil {
			rs := s.cfg.Repl.Status()
			resp.Stats.Role = rs.Role
			resp.Stats.ReplLagFrames = rs.LagFrames()
			resp.Stats.ReplLagSeconds = rs.LagSeconds
		}
	case OpWatch:
		s.backend.Watch(int(req.Node))
	case OpUnwatch:
		s.backend.Unwatch(int(req.Node))
	case OpDrainEvents:
		resp.Events, resp.Dropped = s.backend.DrainEvents()
	case OpViewOpen:
		stats := s.backend.Stats()
		st.mu.Lock()
		if len(st.views) >= s.cfg.MaxViews {
			st.mu.Unlock()
			return s.errReply(req.ID, ErrCodeBadRequest,
				fmt.Sprintf("view limit %d reached", s.cfg.MaxViews))
		}
		st.nextView++
		st.views[st.nextView] = stats.SqrtLevel
		resp.View = st.nextView
		st.mu.Unlock()
		resp.Level = int32(stats.SqrtLevel)
	case OpViewZoomIn, OpViewZoomOut:
		levels := s.backend.Stats().Levels
		st.mu.Lock()
		level, ok := st.views[req.View]
		if !ok {
			st.mu.Unlock()
			return s.errReply(req.ID, ErrCodeBadRequest, fmt.Sprintf("no view %d", req.View))
		}
		next := level + 1
		if req.Op == OpViewZoomOut {
			next = level - 1
		}
		if next >= 1 && next <= levels {
			st.views[req.View] = next
			resp.Moved = true
			resp.Level = int32(next)
		} else {
			resp.Level = int32(level)
		}
		st.mu.Unlock()
	case OpViewClusters:
		level, ok := st.viewLevel(req.View)
		if !ok {
			return s.errReply(req.ID, ErrCodeBadRequest, fmt.Sprintf("no view %d", req.View))
		}
		resp.Clusters = s.backend.Clusters(level)
	case OpViewClusterOf:
		level, ok := st.viewLevel(req.View)
		if !ok {
			return s.errReply(req.ID, ErrCodeBadRequest, fmt.Sprintf("no view %d", req.View))
		}
		resp.Members = s.backend.ClusterOf(int(req.Node), level)
	case OpViewClose:
		st.mu.Lock()
		delete(st.views, req.View)
		st.mu.Unlock()
	case OpTieRank:
		if req.K <= 0 {
			return s.errReply(req.ID, ErrCodeBadRequest, fmt.Sprintf("tierank k %d, want positive", req.K))
		}
		resp.Rank = s.backend.TieRank(int(req.Level), int(req.K))
	case OpEvolution:
		resp.Evo, resp.Seq, resp.Dropped = s.backend.Evolution(req.From)
	case OpTraces:
		if s.cfg.Tracer == nil {
			return s.errReply(req.ID, ErrCodeBadRequest, "tracing not enabled")
		}
		resp.Raw = s.cfg.Tracer.Render(req.From, req.K != 0)
	case OpReplStatus:
		if s.cfg.Repl == nil {
			return s.errReply(req.ID, ErrCodeBadRequest, "replication not enabled")
		}
		resp.Repl = s.cfg.Repl.Status()
	case OpPromote:
		if s.cfg.Repl == nil {
			return s.errReply(req.ID, ErrCodeBadRequest, "replication not enabled")
		}
		if err := s.cfg.Repl.Promote(); err != nil {
			return s.errReply(req.ID, ErrCodeRejected, err.Error())
		}
	default:
		return s.errReply(req.ID, ErrCodeBadRequest, fmt.Sprintf("unknown op %d", req.Op))
	}
	return EncodeResponse(req.Op, resp)
}
