package serve

import (
	"bytes"
	"testing"
)

// allErrCodes is the exhaustive error-code corpus — the wirecomplete
// analyzer requires every ErrCode* constant to appear in the package's
// tests, and this table is where a new code lands first.
var allErrCodes = []uint8{
	ErrCodeBadRequest,
	ErrCodeBadFrame,
	ErrCodeFrameTooBig,
	ErrCodeOverloaded,
	ErrCodeDeadline,
	ErrCodeShuttingDown,
	ErrCodeRejected,
	ErrCodeReadOnly,
	ErrCodeInternal,
}

// TestAllErrCodesRoundTrip drives every defined error code through
// EncodeError → DecodeResponse and checks the code, message and a
// distinct stable name survive.
func TestAllErrCodesRoundTrip(t *testing.T) {
	seen := map[string]uint8{}
	for _, code := range allErrCodes {
		payload := EncodeError(9, code, "boom")
		resp, err := DecodeResponse(OpStats, payload)
		if err != nil {
			t.Fatalf("code %d: %v", code, err)
		}
		if resp.Err == nil || resp.Err.Code != code || resp.Err.Msg != "boom" {
			t.Fatalf("code %d: bad reply %+v", code, resp)
		}
		name := errCodeName(code)
		if prev, dup := seen[name]; dup {
			t.Fatalf("codes %d and %d share name %q", prev, code, name)
		}
		seen[name] = code
	}
}

// TestReplSnapshotWireRoundTrip covers the push-only OpReplSnapshot payload:
// encode → raw-decode and encode → stream-decode must both restore it.
func TestReplSnapshotWireRoundTrip(t *testing.T) {
	in := &ReplSnapshot{Index: 7, Total: 4096, Off: 1024, Data: []byte("chunk")}
	payload := EncodeReplSnapshot(in)
	if len(payload) == 0 || payload[0] != OpReplSnapshot {
		t.Fatalf("payload does not lead with OpReplSnapshot: %v", payload[:1])
	}
	out, err := DecodeReplSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Index != in.Index || out.Total != in.Total || out.Off != in.Off ||
		!bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	msg, err := DecodeReplMessage(payload)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Snapshot == nil || msg.Snapshot.Off != in.Off {
		t.Fatalf("stream decode: got %+v", msg)
	}
}
