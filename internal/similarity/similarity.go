// Package similarity implements Section IV-B/C of the paper: the active
// similarity σ, active neighbor sets and node types (core / p-core /
// periphery), the local reinforcement process (direct consolidation, triadic
// consolidation, wedge stretch), and the maintained similarity function S_t
// whose inverse 1/S_t is the edge weight of the distance metric M_t.
//
// All dynamic quantities are kept *anchored* under the global decay factor
// (package decay): activeness and S_t are PosM, so their anchored values
// only change on activations and absorb ×g at batched rescales. The active
// similarity σ is NeuM — a pure ratio in which g cancels (Lemma 3) — so the
// cached σ values and the derived node types never change under pure decay.
//
// The package maintains, per edge, the anchored numerator of σ
//
//	num(u,v) = Σ_{x ∈ N(u)∩N(v)} (a(u,x) + a(v,x))
//
// so that σ(u,v) = num(u,v) / (A(u) + A(v)) is an O(1) read, where A(v) is
// the weighted degree kept by decay.Activeness. An activation on (u,v)
// changes num only on edges incident to u or v, giving the paper's
// O(deg u + deg v) maintenance cost per activation (Lemma 5) exactly.
package similarity

import (
	"fmt"
	"math"

	"anc/internal/decay"
	"anc/internal/graph"
)

// NodeType classifies a node by its active neighbor set (Section IV-B).
type NodeType uint8

const (
	// Core nodes have at least μ active neighbors and lead communities.
	Core NodeType = iota
	// PCore nodes are not cores but have degree ≥ μ: potential cores.
	PCore
	// Periphery nodes have degree < μ and can never become cores.
	Periphery
)

// String returns the paper's name for the node type.
func (t NodeType) String() string {
	switch t {
	case Core:
		return "core"
	case PCore:
		return "p-core"
	case Periphery:
		return "periphery"
	default:
		return fmt.Sprintf("NodeType(%d)", uint8(t))
	}
}

// Config holds the similarity parameters of Table II.
type Config struct {
	// Epsilon is the active-similarity threshold ε defining active
	// neighbor sets N_ε(v).
	Epsilon float64
	// Mu is the core threshold μ: |N_ε(v)| ≥ μ makes v a core.
	Mu int
	// SMin and SMax clamp the maintained similarity so the reciprocal
	// edge weight 1/S stays finite and positive under wedge stretch.
	SMin, SMax float64
}

// DefaultConfig mirrors the paper's defaults (ε and μ are graph-dependent;
// these are the mid-range values of Table II).
func DefaultConfig() Config {
	return Config{Epsilon: 0.4, Mu: 4, SMin: 1e-9, SMax: 1e12}
}

func (c *Config) validate() error {
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("similarity: epsilon %v outside [0,1]", c.Epsilon)
	}
	if c.Mu < 1 {
		return fmt.Errorf("similarity: mu %d < 1", c.Mu)
	}
	if !(c.SMin > 0) || !(c.SMax > c.SMin) {
		return fmt.Errorf("similarity: need 0 < SMin < SMax, got %v, %v", c.SMin, c.SMax)
	}
	return nil
}

// Store maintains the similarity function S_t and every quantity it is
// derived from, on top of a fixed relation graph and a decay clock.
type Store struct {
	g     *graph.Graph
	act   *decay.Activeness
	clock *decay.Clock
	cfg   Config

	s     []float64 // anchored similarity S* per edge (PosM)
	num   []float64 // anchored σ numerator per edge (PosM)
	prev  []float64 // last-seen anchored activeness per edge (PosM)
	sigma []float64 // cached σ per edge (NeuM: scale-free)
	cnt   []int32   // |N_ε(v)| per node, derived from sigma
}

// New builds a similarity store over g with the given clock and an initial
// uniform edge activeness (the paper's online methods use 1). The initial
// similarity is S_0 = 1 on every edge; apply Reinforce over all edges in
// repetitions (see core.Build) to fold structural cohesiveness into S_0.
func New(g *graph.Graph, clock *decay.Clock, initialActiveness float64, cfg Config) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	st := &Store{
		g:     g,
		clock: clock,
		cfg:   cfg,
		s:     make([]float64, g.M()),
		num:   make([]float64, g.M()),
		prev:  make([]float64, g.M()),
		sigma: make([]float64, g.M()),
		cnt:   make([]int32, g.N()),
	}
	st.act = decay.NewActiveness(clock, g.N(), g.M(), initialActiveness,
		func(e int32) (int32, int32) { return g.Endpoints(e) })
	for i := range st.s {
		st.s[i] = 1
		st.prev[i] = st.act.Anchored(int32(i))
	}
	st.RebuildSigma()
	clock.Register(st)
	return st, nil
}

// RebuildSigma recomputes every σ numerator, cached σ, and active-neighbor
// count from scratch. O(Σ_e (deg u + deg v)) — triangle-listing cost. It is
// called at construction; the incremental path keeps everything exact, so
// callers only need it after out-of-band mutation in tests.
func (st *Store) RebuildSigma() {
	for i := range st.cnt {
		st.cnt[i] = 0
	}
	for e := 0; e < st.g.M(); e++ {
		u, v := st.g.Endpoints(int32(e))
		num := 0.0
		st.g.CommonNeighbors(u, v, func(w graph.NodeID, eu, ev graph.EdgeID) {
			num += st.act.Anchored(eu) + st.act.Anchored(ev)
		})
		st.num[e] = num
		st.sigma[e] = st.sigmaFromNum(int32(e), u, v)
		if st.sigma[e] >= st.cfg.Epsilon {
			st.cnt[u]++
			st.cnt[v]++
		}
	}
}

func (st *Store) sigmaFromNum(e int32, u, v graph.NodeID) float64 {
	den := st.act.NodeAnchored(u) + st.act.NodeAnchored(v)
	if den <= 0 {
		return 0
	}
	return st.num[e] / den
}

// OnRescale implements decay.Rescalable. S, num and the activeness shadow
// are PosM and absorb ×g; σ and the counts are NeuM and unchanged.
func (st *Store) OnRescale(g float64) {
	for i := range st.s {
		st.s[i] *= g
		st.num[i] *= g
		st.prev[i] *= g
	}
}

// ExportState returns copies of the anchored similarity and activeness of
// every edge — the snapshot-persistence payload. Call after a clock
// Rescale so the anchored values equal the true values.
func (st *Store) ExportState() (s, act []float64) {
	s = append([]float64(nil), st.s...)
	act = make([]float64, st.g.M())
	for e := range act {
		act[e] = st.act.Anchored(int32(e))
	}
	return s, act
}

// RestoreState overwrites the similarity and activeness state with saved
// values (anchored at the clock's current anchor) and rebuilds the derived
// σ caches and active counts.
func (st *Store) RestoreState(s, act []float64) {
	if len(s) != len(st.s) || len(act) != st.g.M() {
		panic("similarity: RestoreState length mismatch")
	}
	copy(st.s, s)
	st.act.Restore(act)
	copy(st.prev, act)
	st.RebuildSigma()
}

// Graph returns the underlying relation graph.
func (st *Store) Graph() *graph.Graph { return st.g }

// Activeness returns the underlying activeness store.
func (st *Store) Activeness() *decay.Activeness { return st.act }

// Clock returns the decay clock.
func (st *Store) Clock() *decay.Clock { return st.clock }

// Config returns the parameters the store was built with.
func (st *Store) Config() Config { return st.cfg }

// Anchored returns the anchored similarity S*_t(e).
func (st *Store) Anchored(e graph.EdgeID) float64 { return st.s[e] }

// At returns the true similarity S_t(e) = S*_t(e) × g(t, t*).
func (st *Store) At(e graph.EdgeID) float64 { return st.s[e] * st.clock.G() }

// Weight returns the anchored reciprocal similarity 1/S*_t(e): the edge
// weight of the distance metric M_t as stored in the index. True distances
// are anchored distances divided by g (the metric is NegM, Lemma 6), which
// never changes shortest-path comparisons.
func (st *Store) Weight(e graph.EdgeID) float64 { return 1 / st.s[e] }

// Sigma returns the active similarity σ(u, v) of edge e. O(1).
func (st *Store) Sigma(e graph.EdgeID) float64 { return st.sigma[e] }

// ActiveNeighborCount returns |N_ε(v)|.
func (st *Store) ActiveNeighborCount(v graph.NodeID) int { return int(st.cnt[v]) }

// NodeType classifies v as core, p-core or periphery.
func (st *Store) NodeType(v graph.NodeID) NodeType {
	if int(st.cnt[v]) >= st.cfg.Mu {
		return Core
	}
	if st.g.Degree(v) >= st.cfg.Mu {
		return PCore
	}
	return Periphery
}

// Activate processes the activation (e, t): advances the clock, bumps the
// activeness of e, exactly maintains σ on all edges incident to the
// endpoints, applies the activation's direct unit impact to S_t(e), and
// applies the local reinforcement. It returns the new anchored weight 1/S*
// of e so callers can propagate the change into the distance index. Cost
// O(deg u + deg v) per Lemma 5.
//
// Like the activeness (Equation 1), the similarity accrues a decayed unit
// impact per activation — "the similarity S_t(e) decays at the same ratio λ
// as the edge weight a_t(e)" (Section IV-C) — which is what lets the online
// method ANCO update the index on every activation even though it applies
// no further local reinforcement after initialization (Section VI). The
// reinforcement terms AF/TF/WSF are layered on top per method policy.
func (st *Store) Activate(e graph.EdgeID, t float64) (newWeight float64) {
	st.ActivateNoReinforce(e, t)
	return st.Reinforce(e)
}

// ActivateNoReinforce updates activeness, σ and the direct unit impact on
// S for activation (e, t) but applies no local reinforcement — the ANCO
// path, also used by ANCOR between reinforcement intervals. It returns the
// new anchored weight 1/S*(e).
func (st *Store) ActivateNoReinforce(e graph.EdgeID, t float64) (newWeight float64) {
	u, v := st.g.Endpoints(e)
	st.act.Activate(e, t)
	st.refreshAround(e, u, v)
	st.s[e] = st.clampAnchored(st.s[e] + 1/st.clock.G())
	return 1 / st.s[e]
}

// BumpNoReinforce applies one activation impact on e at the clock's
// current time without advancing the clock, touching the σ caches, or
// applying reinforcement — the inner loop of batch ingest. The caller
// advances the clock per distinct timestamp, Bumps every activation, and
// settles the deferred σ maintenance with RefreshEdgeNum/RefreshNodeSigma
// once per distinct edge/node at batch end. The activeness and similarity
// arithmetic is exactly Activate's (one += 1/g, clamped, per impact), so
// per-op and batched ingest leave bit-identical anchored state.
func (st *Store) BumpNoReinforce(e graph.EdgeID) {
	st.act.Bump(e)
	st.s[e] = st.clampAnchored(st.s[e] + 1/st.clock.G())
}

// RefreshEdgeNum folds the accumulated activeness delta of edge e into the
// σ numerators of edges adjacent through common neighbors — the deferred
// first half of refreshAround. Call once per distinct activated edge of a
// batch, before RefreshNodeSigma on the affected nodes.
func (st *Store) RefreshEdgeNum(e graph.EdgeID) {
	delta := st.act.Anchored(e) - st.prev[e]
	if delta == 0 {
		return
	}
	st.prev[e] = st.act.Anchored(e)
	u, v := st.g.Endpoints(e)
	st.g.CommonNeighbors(u, v, func(w graph.NodeID, eu, ev graph.EdgeID) {
		st.num[eu] += delta
		st.num[ev] += delta
	})
}

// RefreshNodeSigma re-evaluates σ and the active-neighbor counts on every
// edge incident to x — the deferred second half of refreshAround. Call
// once per distinct endpoint of a batch, after every RefreshEdgeNum.
func (st *Store) RefreshNodeSigma(x graph.NodeID) { st.refreshIncidentSigma(x) }

// refreshAround exactly updates σ numerators, cached σ, and active counts
// after the activeness of edge e(u,v) changed. Numerators change only on
// edges (w,u) and (w,v) for common neighbors w; denominators change for all
// edges incident to u or v. The activeness delta is recovered from the
// shadow copy so the arithmetic stays consistent across batched rescales
// (both sides absorb the same ×g).
func (st *Store) refreshAround(e graph.EdgeID, u, v graph.NodeID) {
	delta := st.act.Anchored(e) - st.prev[e]
	st.prev[e] = st.act.Anchored(e)
	st.g.CommonNeighbors(u, v, func(w graph.NodeID, eu, ev graph.EdgeID) {
		st.num[eu] += delta
		st.num[ev] += delta
	})
	st.refreshIncidentSigma(u)
	st.refreshIncidentSigma(v)
}

// refreshIncidentSigma re-evaluates σ for every edge incident to x and
// adjusts the active counts of both endpoints on threshold crossings.
func (st *Store) refreshIncidentSigma(x graph.NodeID) {
	eps := st.cfg.Epsilon
	for _, h := range st.g.Neighbors(x) {
		old := st.sigma[h.Edge]
		nu := st.sigmaFromNum(h.Edge, x, h.To)
		//anclint:ignore floateq bit-exact change detection: a value recomputed from identical inputs is bit-identical, and an epsilon here would miss genuine threshold crossings
		if nu == old {
			continue
		}
		st.sigma[h.Edge] = nu
		wasActive, isActive := old >= eps, nu >= eps
		if wasActive != isActive {
			d := int32(1)
			if wasActive {
				d = -1
			}
			st.cnt[x] += d
			st.cnt[h.To] += d
		}
	}
}

// Reinforce applies the local reinforcement of Section IV-B to the trigger
// edge e(u, v): for each trigger node the update rule selected by its node
// type combines direct consolidation AF, triadic consolidation TF and wedge
// stretch WSF. Both trigger nodes contribute deltas computed against the
// pre-update S values (symmetric, order-independent), and the result is
// clamped to [SMin, SMax]. The updated function remains PosM (Lemma 4)
// because every term is a product of PosM factors and scale-free σ values.
// It returns the new anchored weight 1/S*(e). Cost O(deg u + deg v).
func (st *Store) Reinforce(e graph.EdgeID) (newWeight float64) {
	u, v := st.g.Endpoints(e)
	delta := st.reinforceDelta(e, u, v) + st.reinforceDelta(e, v, u)
	st.s[e] = st.clampAnchored(st.s[e] + delta)
	return 1 / st.s[e]
}

// reinforceDelta computes the contribution of trigger node u on edge
// e(u, v) without applying it.
func (st *Store) reinforceDelta(e graph.EdgeID, u, v graph.NodeID) float64 {
	deg := float64(st.g.Degree(u))
	if deg == 0 {
		return 0
	}
	typ := st.NodeType(u)
	var af, tf, wsf float64
	if typ == Core || typ == PCore {
		// Direct consolidation: AF = F(e) σ(u,v) / deg(u).
		af = st.s[e] * st.sigma[e] / deg
		// Triadic consolidation over common neighbors.
		st.g.CommonNeighbors(u, v, func(w graph.NodeID, eu, ev graph.EdgeID) {
			tf += math.Sqrt(st.s[eu]*st.s[ev]) * st.sigma[eu] / deg
		})
	}
	if typ == Periphery || typ == PCore {
		// Wedge stretch over exclusive neighbors of u.
		st.g.ExclusiveNeighbors(u, v, func(w graph.NodeID, ew graph.EdgeID) {
			wsf += st.s[ew] * st.sigma[ew] / deg
		})
	}
	switch typ {
	case Core:
		return af + tf
	case Periphery:
		return -wsf
	default: // PCore
		return af + tf - wsf
	}
}

// clampAnchored clamps an anchored similarity into the configured range,
// expressed in anchored units (the clamp tracks the current decay scale so
// the bound applies to the true similarity).
func (st *Store) clampAnchored(s float64) float64 {
	g := st.clock.G()
	lo, hi := st.cfg.SMin/g, st.cfg.SMax/g
	switch {
	case math.IsNaN(s), s < lo:
		return lo
	case s > hi:
		return hi
	default:
		return s
	}
}
