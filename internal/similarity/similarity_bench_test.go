package similarity

import (
	"math/rand"
	"testing"

	"anc/internal/decay"
	"anc/internal/graph"
)

func benchStore(b *testing.B, n, extra int) (*Store, *graph.Graph) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	gb := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		gb.AddEdge(graph.NodeID(rng.Intn(v)), graph.NodeID(v))
	}
	for i := 0; i < extra; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			gb.AddEdge(u, v)
		}
	}
	g := gb.Build()
	st, err := New(g, decay.NewClock(0.1), 1, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return st, g
}

// BenchmarkActivate measures the full similarity maintenance per
// activation: activeness bump, exact σ refresh, unit impact, local
// reinforcement — the Lemma 5 primitive.
func BenchmarkActivate(b *testing.B) {
	st, g := benchStore(b, 4096, 16384)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Activate(graph.EdgeID(rng.Intn(g.M())), float64(i)*1e-3)
	}
}

// BenchmarkActivateNoReinforce isolates the σ maintenance (the ANCO path).
func BenchmarkActivateNoReinforce(b *testing.B) {
	st, g := benchStore(b, 4096, 16384)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ActivateNoReinforce(graph.EdgeID(rng.Intn(g.M())), float64(i)*1e-3)
	}
}

// BenchmarkReinforce isolates the local reinforcement arithmetic.
func BenchmarkReinforce(b *testing.B) {
	st, g := benchStore(b, 4096, 16384)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reinforce(graph.EdgeID(rng.Intn(g.M())))
	}
}

// BenchmarkRebuildSigma is the from-scratch cost the incremental path
// avoids (triangle-listing over the whole graph).
func BenchmarkRebuildSigma(b *testing.B) {
	st, _ := benchStore(b, 4096, 16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.RebuildSigma()
	}
}
