package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anc/internal/decay"
	"anc/internal/graph"
)

func buildGraph(t testing.TB, n int, edges [][2]graph.NodeID) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// twoTriangles: two triangles {0,1,2} and {3,4,5} joined by bridge 2-3.
func twoTriangles(t testing.TB) *graph.Graph {
	return buildGraph(t, 6, [][2]graph.NodeID{
		{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3},
	})
}

func newStore(t testing.TB, g *graph.Graph, cfg Config) *Store {
	t.Helper()
	st, err := New(g, decay.NewClock(0.1), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestConfigValidation(t *testing.T) {
	g := twoTriangles(t)
	bad := []Config{
		{Epsilon: -0.1, Mu: 2, SMin: 1e-9, SMax: 1},
		{Epsilon: 1.5, Mu: 2, SMin: 1e-9, SMax: 1},
		{Epsilon: 0.5, Mu: 0, SMin: 1e-9, SMax: 1},
		{Epsilon: 0.5, Mu: 2, SMin: 0, SMax: 1},
		{Epsilon: 0.5, Mu: 2, SMin: 2, SMax: 1},
	}
	for i, cfg := range bad {
		if _, err := New(g, decay.NewClock(0.1), 1, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestSigmaUniformIsDice: with uniform activeness the active similarity
// reduces to 2|N(u)∩N(v)| / (deg u + deg v).
func TestSigmaUniformIsDice(t *testing.T) {
	g := twoTriangles(t)
	st := newStore(t, g, DefaultConfig())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(int32(e))
		common := 0
		g.CommonNeighbors(u, v, func(graph.NodeID, graph.EdgeID, graph.EdgeID) { common++ })
		want := 2 * float64(common) / float64(g.Degree(u)+g.Degree(v))
		if got := st.Sigma(int32(e)); !almostEqual(got, want) {
			t.Errorf("σ(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
}

// TestSigmaBoostedByActivation: activating the edges between u, v and a
// common neighbor raises σ(u,v); activating an exclusive edge lowers it.
func TestSigmaBoostedByActivation(t *testing.T) {
	g := twoTriangles(t)
	st := newStore(t, g, DefaultConfig())
	bridge := g.FindEdge(2, 3)
	e01 := g.FindEdge(0, 1)
	before := st.Sigma(e01)
	// Common neighbor of 0 and 1 is 2: activate (0,2) and (1,2).
	st.ActivateNoReinforce(g.FindEdge(0, 2), 1)
	st.ActivateNoReinforce(g.FindEdge(1, 2), 1)
	if st.Sigma(e01) <= before {
		t.Errorf("σ(0,1) not boosted: %v -> %v", before, st.Sigma(e01))
	}
	// Activating the bridge (exclusive edge of 2 w.r.t. node 0's view of
	// (0,2)) inflates node 2's weighted degree, lowering σ(0,2).
	e02 := g.FindEdge(0, 2)
	before = st.Sigma(e02)
	for i := 0; i < 5; i++ {
		st.ActivateNoReinforce(bridge, float64(2+i))
	}
	if st.Sigma(e02) >= before {
		t.Errorf("σ(0,2) not reduced by exclusive activity: %v -> %v", before, st.Sigma(e02))
	}
}

// TestIncrementalSigmaMatchesRebuild is the central exactness property:
// after arbitrary activation streams (with rescales interleaved), every
// cached σ and active count equals a from-scratch recomputation.
func TestIncrementalSigmaMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(20)
		b := graph.NewBuilder(n)
		for i := 0; i < n*3; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		if g.M() == 0 {
			return true
		}
		clock := decay.NewClock(0.2)
		clock.SetRescaleEvery(7)
		st, err := New(g, clock, 1, DefaultConfig())
		if err != nil {
			return false
		}
		now := 0.0
		for i := 0; i < 60; i++ {
			now += rng.Float64()
			st.ActivateNoReinforce(graph.EdgeID(rng.Intn(g.M())), now)
		}
		gotSigma := append([]float64(nil), st.sigma...)
		gotCnt := append([]int32(nil), st.cnt...)
		st.RebuildSigma()
		for e := range gotSigma {
			if !almostEqual(gotSigma[e], st.sigma[e]) {
				return false
			}
		}
		for v := range gotCnt {
			if gotCnt[v] != st.cnt[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSigmaInvariantUnderDecay: σ is NeuM (Lemma 3) — advancing time and
// rescaling changes no σ value and no node type.
func TestSigmaInvariantUnderDecay(t *testing.T) {
	g := twoTriangles(t)
	clock := decay.NewClock(0.5)
	clock.SetRescaleEvery(0)
	st, err := New(g, clock, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st.ActivateNoReinforce(0, 1)
	st.ActivateNoReinforce(3, 2)
	before := append([]float64(nil), st.sigma...)
	types := make([]NodeType, g.N())
	for v := range types {
		types[v] = st.NodeType(graph.NodeID(v))
	}
	clock.Advance(50)
	clock.Rescale()
	st.RebuildSigma() // recompute from rescaled state; must agree
	for e := range before {
		if !almostEqual(before[e], st.sigma[e]) {
			t.Fatalf("σ[%d] drifted under decay: %v -> %v", e, before[e], st.sigma[e])
		}
	}
	for v := range types {
		if st.NodeType(graph.NodeID(v)) != types[v] {
			t.Fatalf("node %d type changed under decay", v)
		}
	}
}

// TestSimilarityPosM: the maintained S is PosM — the true similarity
// S*(e)·g matches an unanchored shadow computation across decay/rescale.
func TestSimilarityPosM(t *testing.T) {
	g := twoTriangles(t)
	clock := decay.NewClock(0.3)
	clock.SetRescaleEvery(0)
	st, err := New(g, clock, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st.Activate(0, 1)
	trueS := st.At(0)
	clock.Advance(3)
	wantDecayed := trueS * math.Exp(-0.3*2)
	if !almostEqual(st.At(0), wantDecayed) {
		t.Fatalf("S decay wrong: %v, want %v", st.At(0), wantDecayed)
	}
	clock.Rescale()
	if !almostEqual(st.At(0), wantDecayed) {
		t.Fatalf("rescale changed true S: %v, want %v", st.At(0), wantDecayed)
	}
}

func TestNodeTypes(t *testing.T) {
	// Star center 0 with 5 leaves: no triangles, so σ = 0 on all edges.
	g := buildGraph(t, 6, [][2]graph.NodeID{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})
	cfg := Config{Epsilon: 0.3, Mu: 2, SMin: 1e-9, SMax: 1e12}
	st := newStore(t, g, cfg)
	if typ := st.NodeType(0); typ != PCore {
		t.Errorf("star center = %v, want p-core (deg ≥ μ, no active neighbors)", typ)
	}
	if typ := st.NodeType(1); typ != Periphery {
		t.Errorf("leaf = %v, want periphery", typ)
	}
	// A triangle with low μ: every node has 2 active neighbors (σ = 1/2 on
	// each triangle edge... compute: deg=2 each, common=1 → σ = 2/4 = 0.5 ≥ 0.3).
	g2 := buildGraph(t, 3, [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}})
	st2 := newStore(t, g2, cfg)
	for v := graph.NodeID(0); v < 3; v++ {
		if typ := st2.NodeType(v); typ != Core {
			t.Errorf("triangle node %d = %v (cnt=%d), want core", v, typ, st2.ActiveNeighborCount(v))
		}
	}
}

// TestReinforceCoreIncreases: a core trigger node applies AF+TF > 0, so S
// on a triangle edge grows.
func TestReinforceCoreIncreases(t *testing.T) {
	g := buildGraph(t, 3, [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}})
	cfg := Config{Epsilon: 0.3, Mu: 2, SMin: 1e-9, SMax: 1e12}
	st := newStore(t, g, cfg)
	before := st.Anchored(0)
	st.Reinforce(0)
	if st.Anchored(0) <= before {
		t.Fatalf("core reinforcement did not increase S: %v -> %v", before, st.Anchored(0))
	}
}

// TestReinforcePeripheryDecreases: periphery trigger nodes with exclusive
// neighbors apply only wedge stretch, shrinking S.
func TestReinforcePeripheryDecreases(t *testing.T) {
	// Path 0-1-2: all degrees ≤ 2; with μ=3 all nodes are periphery.
	g := buildGraph(t, 3, [][2]graph.NodeID{{0, 1}, {1, 2}})
	cfg := Config{Epsilon: 0.3, Mu: 3, SMin: 1e-9, SMax: 1e12}
	st := newStore(t, g, cfg)
	e01 := g.FindEdge(0, 1)
	before := st.Anchored(e01)
	st.Reinforce(e01) // node 1 has exclusive neighbor 2 -> WSF > 0... but σ(1,2)=0 (no triangles)
	// With no triangles every σ is 0, so the delta is 0; force σ > 0 by
	// using a graph with a triangle plus a pendant.
	if st.Anchored(e01) != before {
		t.Fatalf("pathological WSF moved S without active σ: %v -> %v", before, st.Anchored(e01))
	}
	// Triangle {0,1,2} + pendant 3 on node 2; trigger edge (2,3).
	g2 := buildGraph(t, 4, [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	cfg2 := Config{Epsilon: 0.01, Mu: 5, SMin: 1e-9, SMax: 1e12} // μ high: all periphery
	st2 := newStore(t, g2, cfg2)
	e23 := g2.FindEdge(2, 3)
	before = st2.Anchored(e23)
	st2.Reinforce(e23)
	if st2.Anchored(e23) >= before {
		t.Fatalf("periphery wedge stretch did not decrease S: %v -> %v", before, st2.Anchored(e23))
	}
}

// TestReinforceSymmetric: the reinforcement deltas are computed against
// pre-update values, so the result is independent of trigger-node order.
// We verify by checking a symmetric graph yields symmetric S.
func TestReinforceSymmetric(t *testing.T) {
	// Two triangles bridged: edges (0,1) and (4,5)... use symmetric pair
	// (0,1) vs (3,4) in twoTriangles — automorphic images.
	g := twoTriangles(t)
	cfg := Config{Epsilon: 0.1, Mu: 2, SMin: 1e-9, SMax: 1e12}
	st := newStore(t, g, cfg)
	e01, e45 := g.FindEdge(0, 1), g.FindEdge(4, 5)
	st.Reinforce(e01)
	st.Reinforce(e45)
	if !almostEqual(st.Anchored(e01), st.Anchored(e45)) {
		t.Fatalf("automorphic edges diverged: %v vs %v", st.Anchored(e01), st.Anchored(e45))
	}
}

func TestClamping(t *testing.T) {
	g := buildGraph(t, 3, [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}})
	cfg := Config{Epsilon: 0.1, Mu: 2, SMin: 0.5, SMax: 1.2}
	st := newStore(t, g, cfg)
	for i := 0; i < 100; i++ {
		st.Reinforce(0)
	}
	if st.Anchored(0) > 1.2+1e-12 {
		t.Fatalf("S exceeded SMax: %v", st.Anchored(0))
	}
	if w := st.Weight(0); w < 1/1.3 {
		t.Fatalf("weight out of range: %v", w)
	}
}

// TestActivateReturnsWeight: Activate's return equals Weight(e).
func TestActivateReturnsWeight(t *testing.T) {
	g := twoTriangles(t)
	st := newStore(t, g, DefaultConfig())
	w := st.Activate(2, 1.5)
	if !almostEqual(w, st.Weight(2)) {
		t.Fatalf("returned weight %v != Weight %v", w, st.Weight(2))
	}
	if !almostEqual(w, 1/st.Anchored(2)) {
		t.Fatalf("weight %v != 1/S* %v", w, 1/st.Anchored(2))
	}
}

// TestActiveCountsNonNegativeProperty: counts never go negative and are
// bounded by degree under arbitrary activity.
func TestActiveCountsNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := twoTriangles(t)
		clock := decay.NewClock(0.4)
		clock.SetRescaleEvery(5)
		st, err := New(g, clock, 1, DefaultConfig())
		if err != nil {
			return false
		}
		now := 0.0
		for i := 0; i < 80; i++ {
			now += rng.Float64() * 2
			st.Activate(graph.EdgeID(rng.Intn(g.M())), now)
			for v := 0; v < g.N(); v++ {
				c := st.ActiveNeighborCount(graph.NodeID(v))
				if c < 0 || c > g.Degree(graph.NodeID(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeTypeString(t *testing.T) {
	if Core.String() != "core" || PCore.String() != "p-core" || Periphery.String() != "periphery" {
		t.Fatal("NodeType strings wrong")
	}
}
