package similarity

import (
	"math"
	"testing"

	"anc/internal/decay"
	"anc/internal/graph"
)

func TestAccessors(t *testing.T) {
	g := twoTriangles(t)
	clock := decay.NewClock(0.1)
	cfg := DefaultConfig()
	st, err := New(g, clock, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Graph() != g || st.Clock() != clock {
		t.Fatal("accessors wrong")
	}
	if st.Activeness() == nil {
		t.Fatal("nil activeness")
	}
	if st.Config() != cfg {
		t.Fatal("config accessor wrong")
	}
	if s := (NodeType(9)).String(); s != "NodeType(9)" {
		t.Fatalf("unknown node type string = %q", s)
	}
}

func TestExportRestoreState(t *testing.T) {
	g := twoTriangles(t)
	clock := decay.NewClock(0.2)
	clock.SetRescaleEvery(0)
	st, err := New(g, clock, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		st.Activate(graph.EdgeID(i%g.M()), float64(i)*0.3)
	}
	clock.Rescale()
	s, act := st.ExportState()

	clock2 := decay.NewClock(0.2)
	st2, err := New(g, clock2, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st2.RestoreState(s, act)
	clock2.RestoreTime(clock.Now(), clock.Anchor())
	for e := 0; e < g.M(); e++ {
		if math.Abs(st.At(graph.EdgeID(e))-st2.At(graph.EdgeID(e))) > 1e-9 {
			t.Fatalf("S[%d] mismatch", e)
		}
		if math.Abs(st.Sigma(graph.EdgeID(e))-st2.Sigma(graph.EdgeID(e))) > 1e-9 {
			t.Fatalf("σ[%d] mismatch", e)
		}
	}
	for v := 0; v < g.N(); v++ {
		if st.ActiveNeighborCount(graph.NodeID(v)) != st2.ActiveNeighborCount(graph.NodeID(v)) {
			t.Fatalf("count[%d] mismatch", v)
		}
	}
	// Length mismatches panic.
	defer func() {
		if recover() == nil {
			t.Fatal("bad length accepted")
		}
	}()
	st2.RestoreState(s[:1], act)
}

// TestSMaxClamp: the upper clamp engages under runaway reinforcement.
func TestSMaxClamp(t *testing.T) {
	g := twoTriangles(t)
	cfg := Config{Epsilon: 0.1, Mu: 2, SMin: 1e-9, SMax: 5}
	st, err := New(g, decay.NewClock(0), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		for e := 0; e < g.M(); e++ {
			st.Reinforce(graph.EdgeID(e))
		}
	}
	for e := 0; e < g.M(); e++ {
		if st.Anchored(graph.EdgeID(e)) > 5+1e-9 {
			t.Fatalf("S[%d] = %v exceeds SMax", e, st.Anchored(graph.EdgeID(e)))
		}
	}
}
