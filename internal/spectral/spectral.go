// Package spectral implements normalized spectral clustering (Ng, Jordan,
// Weiss 2001), which the paper uses to generate ground-truth clusters on
// activation-network snapshots (Section VI-A). The embedding is computed
// with orthogonal (subspace) iteration on the normalized affinity
// D^{-1/2} W D^{-1/2} — shifted so its spectrum is non-negative — followed
// by row normalization and k-means++. Pure stdlib; adequate at the snapshot
// scales the paper uses it for (thousands of nodes).
package spectral

import (
	"math"
	"math/rand"

	"anc/internal/graph"
)

// Params controls the embedding and k-means.
type Params struct {
	// K is the number of clusters (the paper uses 2√n on snapshots).
	K int
	// Dim is the embedding dimension; 0 means min(K, 32). Smaller Dim
	// trades fidelity for speed on large K.
	Dim int
	// Iters is the number of subspace iterations (default 40).
	Iters int
	// KMeansIters bounds Lloyd iterations (default 50).
	KMeansIters int
}

func (p *Params) defaults() {
	if p.Dim <= 0 {
		p.Dim = p.K
		if p.Dim > 32 {
			p.Dim = 32
		}
	}
	if p.Iters <= 0 {
		p.Iters = 40
	}
	if p.KMeansIters <= 0 {
		p.KMeansIters = 50
	}
}

// Cluster runs spectral clustering of g under non-negative edge weights w
// and returns a dense label per node. rng drives k-means++ seeding and the
// initial random subspace.
func Cluster(g *graph.Graph, w []float64, p Params, rng *rand.Rand) []int32 {
	p.defaults()
	n := g.N()
	if p.K < 1 {
		p.K = 1
	}
	if p.K >= n {
		labels := make([]int32, n)
		for i := range labels {
			labels[i] = int32(i)
		}
		return labels
	}
	emb := Embed(g, w, p.Dim, p.Iters, rng)
	// Row-normalize (NJW step).
	for v := 0; v < n; v++ {
		row := emb[v]
		norm := 0.0
		for _, x := range row {
			norm += x * x
		}
		if norm > 0 {
			norm = math.Sqrt(norm)
			for j := range row {
				row[j] /= norm
			}
		}
	}
	return KMeans(emb, p.K, p.KMeansIters, rng)
}

// Embed returns the dim-dimensional spectral embedding: the dominant
// invariant subspace of (I + D^{-1/2} W D^{-1/2}) / 2, whose top
// eigenvectors are the bottom eigenvectors of the normalized Laplacian.
// Rows are node embeddings.
func Embed(g *graph.Graph, w []float64, dim, iters int, rng *rand.Rand) [][]float64 {
	n := g.N()
	invSqrtDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		d := 0.0
		for _, h := range g.Neighbors(graph.NodeID(v)) {
			d += w[h.Edge]
		}
		if d > 0 {
			invSqrtDeg[v] = 1 / math.Sqrt(d)
		}
	}
	// X: n × dim random start.
	x := make([][]float64, n)
	for v := range x {
		x[v] = make([]float64, dim)
		for j := range x[v] {
			x[v][j] = rng.NormFloat64()
		}
	}
	y := make([][]float64, n)
	for v := range y {
		y[v] = make([]float64, dim)
	}
	for it := 0; it < iters; it++ {
		// y = (X + M X) / 2, with M = D^{-1/2} W D^{-1/2}.
		for v := 0; v < n; v++ {
			copy(y[v], x[v])
		}
		for v := 0; v < n; v++ {
			for _, h := range g.Neighbors(graph.NodeID(v)) {
				c := w[h.Edge] * invSqrtDeg[v] * invSqrtDeg[h.To]
				for j := 0; j < dim; j++ {
					y[v][j] += c * x[h.To][j]
				}
			}
		}
		for v := 0; v < n; v++ {
			for j := 0; j < dim; j++ {
				y[v][j] /= 2
			}
		}
		orthonormalize(y)
		x, y = y, x
	}
	return x
}

// orthonormalize runs modified Gram–Schmidt over the columns of x (n×d).
// Degenerate columns are re-randomized deterministically from the column
// index so the subspace keeps full rank.
func orthonormalize(x [][]float64) {
	if len(x) == 0 {
		return
	}
	n, d := len(x), len(x[0])
	for j := 0; j < d; j++ {
		for k := 0; k < j; k++ {
			dot := 0.0
			for v := 0; v < n; v++ {
				dot += x[v][j] * x[v][k]
			}
			for v := 0; v < n; v++ {
				x[v][j] -= dot * x[v][k]
			}
		}
		norm := 0.0
		for v := 0; v < n; v++ {
			norm += x[v][j] * x[v][j]
		}
		if norm < 1e-24 {
			// Rank-deficient: inject a deterministic pseudo-random column.
			s := uint64(j)*2654435761 + 12345
			for v := 0; v < n; v++ {
				s = s*6364136223846793005 + 1442695040888963407
				x[v][j] = float64(int64(s>>11))/float64(1<<52) - 0.5
			}
			norm = 0
			for v := 0; v < n; v++ {
				norm += x[v][j] * x[v][j]
			}
		}
		norm = math.Sqrt(norm)
		for v := 0; v < n; v++ {
			x[v][j] /= norm
		}
	}
}

// KMeans clusters the rows of points into k clusters with k-means++
// seeding and Lloyd iterations, returning a dense label per row. Empty
// clusters are reseeded from the farthest point.
func KMeans(points [][]float64, k, iters int, rng *rand.Rand) []int32 {
	n := len(points)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	d := len(points[0])
	centers := kmeansppInit(points, k, rng)
	labels := make([]int32, n)
	dists := make([]float64, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, pt := range points {
			best, bestD := int32(0), math.Inf(1)
			for c := range centers {
				dd := sqDist(pt, centers[c])
				if dd < bestD {
					best, bestD = int32(c), dd
				}
			}
			dists[i] = bestD
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		counts := make([]int, k)
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
		}
		for i, pt := range points {
			c := labels[i]
			counts[c]++
			for j := 0; j < d; j++ {
				centers[c][j] += pt[j]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Reseed from the currently worst-fit point.
				far, farD := 0, -1.0
				for i := range points {
					if dists[i] > farD {
						far, farD = i, dists[i]
					}
				}
				copy(centers[c], points[far])
				dists[far] = 0
				continue
			}
			inv := 1 / float64(counts[c])
			for j := 0; j < d; j++ {
				centers[c][j] *= inv
			}
		}
	}
	return labels
}

func kmeansppInit(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centers := make([][]float64, 0, k)
	first := rng.Intn(n)
	centers = append(centers, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = sqDist(points[i], centers[0])
	}
	for len(centers) < k {
		total := 0.0
		for _, x := range d2 {
			total += x
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, x := range d2 {
				acc += x
				if acc >= r {
					pick = i
					break
				}
			}
		}
		c := append([]float64(nil), points[pick]...)
		centers = append(centers, c)
		for i := range d2 {
			if dd := sqDist(points[i], c); dd < d2[i] {
				d2[i] = dd
			}
		}
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
