package spectral

import (
	"math"
	"math/rand"
	"testing"

	"anc/internal/graph"
	"anc/internal/quality"
)

func plantedTwo(t testing.TB, size int, rng *rand.Rand) (*graph.Graph, []float64, []int32) {
	t.Helper()
	n := 2 * size
	b := graph.NewBuilder(n)
	truth := make([]int32, n)
	for v := range truth {
		truth[v] = int32(v / size)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := 0.05
			if truth[u] == truth[v] {
				p = 0.7
			}
			if rng.Float64() < p {
				if err := b.AddEdge(graph.NodeID(u), graph.NodeID(v)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	g := b.Build()
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1
	}
	return g, w, truth
}

func TestRecoverPlantedPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, w, truth := plantedTwo(t, 25, rng)
	labels := Cluster(g, w, Params{K: 2}, rng)
	if nmi := quality.NMI(labels, truth); nmi < 0.8 {
		t.Fatalf("NMI = %v", nmi)
	}
}

func TestKGreaterEqualN(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	w := []float64{1, 1}
	labels := Cluster(g, w, Params{K: 10}, rand.New(rand.NewSource(1)))
	seen := map[int32]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Fatalf("k >= n should give singletons: %v", labels)
		}
		seen[l] = true
	}
}

func TestEmbeddingOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, w, _ := plantedTwo(t, 20, rng)
	emb := Embed(g, w, 4, 30, rng)
	// Columns of the n×4 embedding must be orthonormal.
	for a := 0; a < 4; a++ {
		for b2 := a; b2 < 4; b2++ {
			dot := 0.0
			for v := range emb {
				dot += emb[v][a] * emb[v][b2]
			}
			want := 0.0
			if a == b2 {
				want = 1
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Fatalf("col %d·%d = %v, want %v", a, b2, dot, want)
			}
		}
	}
}

func TestKMeansSeparatesObviousBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var pts [][]float64
	var truth []int32
	for c := 0; c < 3; c++ {
		cx := float64(c) * 10
		for i := 0; i < 20; i++ {
			pts = append(pts, []float64{cx + rng.NormFloat64()*0.1, rng.NormFloat64() * 0.1})
			truth = append(truth, int32(c))
		}
	}
	labels := KMeans(pts, 3, 50, rng)
	if nmi := quality.NMI(labels, truth); nmi < 0.99 {
		t.Fatalf("NMI = %v", nmi)
	}
}

func TestKMeansMoreClustersThanPoints(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}}
	labels := KMeans(pts, 5, 10, rand.New(rand.NewSource(1)))
	if len(labels) != 2 {
		t.Fatal("bad label count")
	}
}

func TestKMeansEmpty(t *testing.T) {
	if labels := KMeans(nil, 3, 10, rand.New(rand.NewSource(1))); labels != nil {
		t.Fatal("expected nil for empty input")
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	g, w, _ := plantedTwo(t, 15, rand.New(rand.NewSource(11)))
	a := Cluster(g, w, Params{K: 2}, rand.New(rand.NewSource(42)))
	b := Cluster(g, w, Params{K: 2}, rand.New(rand.NewSource(42)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic under fixed seed")
		}
	}
}
