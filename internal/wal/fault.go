package wal

import (
	"errors"
	"os"
	"sync"
)

// ErrCrashed is returned by a Fault-wrapped file once its crash point has
// been reached: the process is considered dead and nothing further reaches
// the disk.
var ErrCrashed = errors.New("wal: injected crash")

// ErrInjectedWrite is the transient write error injected by
// Fault.FailWriteAt.
var ErrInjectedWrite = errors.New("wal: injected write error")

// ErrInjectedSync is the sync error injected by Fault.FailSyncs.
var ErrInjectedSync = errors.New("wal: injected sync error")

// Fault is a fault-injection harness for the WAL's write path: its Open
// method is an Options.OpenFile that wraps real files and injects short
// writes, write errors, and a crash after exactly N bytes have reached the
// disk — across every file it opened, in write order. It models the two
// failure classes recovery must survive: a syscall failing mid-stream, and
// the process dying with an arbitrary byte prefix persisted.
//
// A Fault is safe for concurrent use.
type Fault struct {
	mu        sync.Mutex
	limited   bool
	remaining int64 // byte budget until crash, valid when limited
	crashed   bool
	failAt    int // fail the failAt-th Write call (1-based); 0 = off
	writes    int
	failSyncs bool
}

// NewFault returns a harness that (until configured) passes everything
// through.
func NewFault() *Fault { return &Fault{} }

// CrashAt arms a crash after n total bytes have been written through the
// harness: the write that crosses the boundary is short (its prefix is
// persisted), it returns ErrCrashed, and every later operation fails.
func (f *Fault) CrashAt(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.limited, f.remaining, f.crashed = true, n, false
}

// FailWriteAt makes the nth Write call (1-based, counted across files)
// return ErrInjectedWrite without persisting anything.
func (f *Fault) FailWriteAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = n
	f.writes = 0
}

// FailSyncs makes every Sync return ErrInjectedSync.
func (f *Fault) FailSyncs(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncs = on
}

// Crashed reports whether the crash point has been reached.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Open implements Options.OpenFile: a real append-mode file behind the
// fault layer.
func (f *Fault) Open(path string) (File, error) {
	real, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &faultFile{fault: f, f: real}, nil
}

type faultFile struct {
	fault *Fault
	f     *os.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fault
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	f.writes++
	if f.failAt > 0 && f.writes == f.failAt {
		return 0, ErrInjectedWrite
	}
	if !f.limited {
		return ff.f.Write(p)
	}
	if f.remaining <= 0 {
		f.crashed = true
		return 0, ErrCrashed
	}
	n := int64(len(p))
	if n <= f.remaining {
		f.remaining -= n
		return ff.f.Write(p)
	}
	// Short write at the crash boundary: only the prefix reaches the disk.
	short := f.remaining
	f.remaining = 0
	f.crashed = true
	n2, err := ff.f.Write(p[:short])
	if err != nil {
		return n2, err
	}
	return n2, ErrCrashed
}

func (ff *faultFile) Sync() error {
	f := ff.fault
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if f.failSyncs {
		return ErrInjectedSync
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
