package wal

import "anc/internal/obs"

// Metrics are the writer's observability hooks. A nil *Metrics (the
// default) disables them; every method is nil-safe so the writer never
// branches on configuration at call sites.
type Metrics struct {
	// Frames counts records appended to the log.
	Frames *obs.Counter
	// Fsyncs counts explicit fsyncs of the active segment (including the
	// fsync on rotation); FsyncSeconds is their latency distribution.
	Fsyncs       *obs.Counter
	FsyncSeconds *obs.Histogram
}

// NewMetrics registers the WAL metric family on reg (nil reg → nil
// metrics, observability off).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Frames: reg.Counter("anc_wal_frames_total",
			"records appended to the write-ahead log"),
		Fsyncs: reg.Counter("anc_wal_fsyncs_total",
			"fsyncs of the active WAL segment"),
		FsyncSeconds: reg.Histogram("anc_wal_fsync_seconds",
			"WAL fsync latency in seconds", nil),
	}
}

func (m *Metrics) appended() {
	if m == nil {
		return
	}
	m.Frames.Inc()
}

func (m *Metrics) fsyncStart() obs.Timer {
	if m == nil {
		return obs.Timer{}
	}
	return m.FsyncSeconds.Start()
}

func (m *Metrics) fsynced() {
	if m == nil {
		return
	}
	m.Fsyncs.Inc()
}
