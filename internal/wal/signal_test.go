package wal

import (
	"testing"
	"time"
)

func TestAppendedSignal(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	next, wake := w.Appended()
	if next != 0 {
		t.Fatalf("fresh log next = %d", next)
	}
	select {
	case <-wake:
		t.Fatal("wake channel fired before any append")
	default:
	}

	appendN(t, w, 0, 3)
	select {
	case <-wake:
	case <-time.After(5 * time.Second):
		t.Fatal("wake channel did not fire after append")
	}
	next, wake = w.Appended()
	if next != 3 {
		t.Fatalf("next = %d after 3 appends", next)
	}

	// A tailer that is caught up parks on the channel and is woken by the
	// very next append.
	done := make(chan uint64, 1)
	go func() {
		<-wake
		n, _ := w.Appended()
		done <- n
	}()
	time.Sleep(10 * time.Millisecond)
	appendN(t, w, 3, 4)
	select {
	case n := <-done:
		if n != 4 {
			t.Fatalf("woken tailer saw next = %d, want 4", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked tailer was never woken")
	}
}

func TestAppendedSignalResume(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A writer resumed over an existing log reports the recovered end.
	w, err = OpenWriter(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	next, _ := w.Appended()
	if next != 5 {
		t.Fatalf("resumed next = %d, want 5", next)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendedSignalWakesOnClose(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, wake := w.Appended()
	done := make(chan struct{})
	go func() {
		<-wake
		close(done)
	}()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake parked tailers")
	}
}

func TestEarliestIndex(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := EarliestIndex(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}

	w, err := OpenWriter(dir, 0, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 20)
	base, ok, err := EarliestIndex(dir)
	if err != nil || !ok || base != 0 {
		t.Fatalf("full log: base=%d ok=%v err=%v", base, ok, err)
	}

	// Truncation advances the earliest retained index to a segment base.
	if err := w.TruncateBefore(10); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	base, ok, err = EarliestIndex(dir)
	if err != nil || !ok {
		t.Fatalf("truncated log: ok=%v err=%v", ok, err)
	}
	if base == 0 || base > 10 {
		t.Fatalf("earliest after TruncateBefore(10) = %d, want in (0, 10]", base)
	}
}
