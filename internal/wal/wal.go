// Package wal implements the append-only write-ahead log that makes an
// activation network durable: every accepted activation is framed,
// checksummed and appended to a segment file before it is applied to the
// in-memory state. Because the decayed state is a pure function of the
// activation history (the tie-decay property), a log of (edge, t) records
// plus a periodic checkpoint is sufficient to reconstruct the exact
// in-memory network after a crash.
//
// # Frame format
//
// Each record is stored as one frame, little-endian:
//
//	offset  size  field
//	0       4     length  — payload byte count (1 .. MaxRecordSize)
//	4       4     crc     — CRC32C (Castagnoli) of the payload
//	8       len   payload — opaque record bytes
//
// A frame with length 0 is never written; on read it marks the end of the
// valid prefix (it is what zero-filled preallocation or a torn header looks
// like). Recovery therefore stops cleanly at the first frame that is torn
// (fewer bytes than the header or payload announce) or corrupt (CRC
// mismatch), and the writer truncates that tail before appending again —
// the log is always a valid prefix of what was attempted.
//
// # Segments
//
// The log is a directory of segment files named %016x.wal, where the name
// is the global index of the segment's first record. The writer rotates to
// a new segment when the current one would exceed Options.SegmentSize.
// Record indices are contiguous across segments, so a reader can skip
// whole segments below a checkpoint without scanning them.
//
// # Durability
//
// Options.Sync selects the fsync policy: SyncAlways fsyncs after every
// record (every acknowledged record survives a crash), SyncInterval fsyncs
// every SyncEvery records (bounded loss window), SyncNever leaves flushing
// to the OS (contents survive process crashes but not power loss).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	headerSize = 8
	// MaxRecordSize bounds a single record; larger frames are treated as
	// corruption on read and rejected on write.
	MaxRecordSize = 16 << 20
	// DefaultSegmentSize is the rotation threshold when Options.SegmentSize
	// is zero.
	DefaultSegmentSize = 4 << 20
	// DefaultSyncEvery is the SyncInterval period when Options.SyncEvery is
	// zero.
	DefaultSyncEvery = 64
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when the writer fsyncs the active segment.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs after every appended record.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs every Options.SyncEvery appended records.
	SyncInterval
	// SyncNever never fsyncs explicitly; the OS flushes at its leisure.
	SyncNever
)

// File is the subset of *os.File the writer needs, factored out so tests
// can inject faults (short writes, write errors, crash-at-byte-N) between
// the WAL and the disk.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configures a Writer. The zero value selects SyncAlways, 4 MiB
// segments and OS files.
type Options struct {
	// SegmentSize is the rotation threshold in bytes (default 4 MiB).
	SegmentSize int64
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the record period of SyncInterval (default 64).
	SyncEvery int
	// OpenFile opens a segment for appending; nil means os.OpenFile with
	// O_CREATE|O_WRONLY|O_APPEND. Tests substitute a fault-injecting
	// implementation.
	OpenFile func(path string) (File, error)
	// Metrics, when non-nil, receives append and fsync observations.
	Metrics *Metrics
	// OnFsync, when non-nil, is called with the wall-clock duration (in
	// seconds) of every fsync the writer performs — both policy-driven
	// syncs and the sync before a rotation. It runs on the appending
	// goroutine, so the owner can attribute fsync time to the batch that
	// paid for it (the per-request tracing breakdown).
	OnFsync func(seconds float64)
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.OpenFile == nil {
		o.OpenFile = func(path string) (File, error) {
			return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		}
	}
	return o
}

// SegmentName returns the file name of the segment whose first record has
// the given global index.
func SegmentName(base uint64) string { return fmt.Sprintf("%016x.wal", base) }

func parseSegmentName(name string) (uint64, bool) {
	if len(name) != 20 || filepath.Ext(name) != ".wal" {
		return 0, false
	}
	var base uint64
	if _, err := fmt.Sscanf(name[:16], "%016x", &base); err != nil {
		return 0, false
	}
	return base, true
}

// segInfo describes one scanned segment: its base index, the number of
// valid records and the byte size of the valid prefix.
type segInfo struct {
	base    uint64
	path    string
	records uint64
	good    int64 // byte length of the valid frame prefix
	torn    bool  // a torn/corrupt frame follows the valid prefix
}

// listSegments returns the directory's segments sorted by base index.
func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if base, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segInfo{base: base, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// scanSegment walks a segment's frames, calling fn (when non-nil) with the
// payload of each valid frame in order. It stops at the first torn or
// corrupt frame and reports the valid prefix; I/O errors other than EOF
// are returned as errors.
func scanSegment(path string, fn func(payload []byte) error) (records uint64, good int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close() //anclint:ignore droppederr read-only scan; a close error cannot lose data
	var (
		hdr [headerSize]byte
		buf []byte
	)
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return records, good, false, nil // clean end
		}
		if err == io.ErrUnexpectedEOF {
			return records, good, true, nil // torn header
		}
		if err != nil {
			return records, good, true, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > MaxRecordSize {
			return records, good, true, nil // padding or corrupt length
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(f, buf); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return records, good, true, nil // torn payload
			}
			return records, good, true, err
		}
		if crc32.Checksum(buf, castagnoli) != crc {
			return records, good, true, nil // corrupt payload
		}
		if fn != nil {
			if err := fn(buf); err != nil {
				return records, good, false, err
			}
		}
		records++
		good += headerSize + int64(length)
	}
}

// Replay reads the log in dir and calls fn(index, payload) for every valid
// record with index ≥ from, in index order. It stops cleanly — without
// error — at the first torn or corrupt frame; everything after it is
// unreachable tail by the prefix property. The returned next is the index
// one past the last record delivered (or from, if none were). Errors come
// only from the filesystem or from fn.
func Replay(dir string, from uint64, fn func(index uint64, payload []byte) error) (next uint64, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return from, err
	}
	next = from
	for i, s := range segs {
		// Skip segments wholly below from: every record of s is < the next
		// segment's base.
		if i+1 < len(segs) && segs[i+1].base <= from {
			continue
		}
		// A segment starting beyond the contiguous position means the
		// records in between were lost with their segment; nothing at or
		// after this point is a continuation of the prefix — stop rather
		// than silently skip indices.
		if s.base > next {
			break
		}
		idx := s.base
		var stop bool
		records, _, torn, err := scanSegment(s.path, func(payload []byte) error {
			if idx >= from {
				if err := fn(idx, payload); err != nil {
					return err
				}
				next = idx + 1
			}
			idx++
			return nil
		})
		if err != nil {
			return next, err
		}
		if torn {
			stop = true
		}
		// A gap to the next segment means the tail of this one was lost;
		// later records are not a contiguous continuation — stop.
		if i+1 < len(segs) && s.base+records != segs[i+1].base {
			stop = true
		}
		if stop {
			break
		}
	}
	return next, nil
}

// Writer appends checksummed frames to the log in dir.
type Writer struct {
	dir    string
	opts   Options
	seg    File
	bases  []uint64 // base index of every live segment, ascending
	base   uint64   // base index of the active segment
	size   int64    // bytes written to the active segment
	next   uint64   // global index of the next record
	acked  uint64   // records known durable (covered by an fsync)
	unsync int      // records appended since the last fsync
	broken error    // sticky failure: a write/sync error tore the tail
	sig    appendSignal
}

// appendSignal publishes the writer's append cursor to tailing readers
// (replication subscribers) without exposing them to the writer's own
// synchronization: it has its own lock, so Appended may be called from any
// goroutine while the owner is mid-Append under an outer mutex.
type appendSignal struct {
	mu   sync.Mutex
	next uint64
	ch   chan struct{} // closed on the next advance; lazily allocated
}

func (s *appendSignal) advance(next uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next = next
	if s.ch != nil {
		close(s.ch)
		s.ch = nil
	}
}

// wakeAll wakes waiters without advancing the cursor — the close path, so
// tails re-check their stop conditions instead of parking forever.
func (s *appendSignal) wakeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ch != nil {
		close(s.ch)
		s.ch = nil
	}
}

func (s *appendSignal) snapshot() (uint64, <-chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ch == nil {
		s.ch = make(chan struct{})
	}
	return s.next, s.ch
}

// Appended returns the index one past the last appended record together
// with a channel that is closed the next time that cursor advances (or the
// writer closes). Unlike every other Writer method it is safe to call
// concurrently with Append — it is the WAL-tailing hook replication
// subscribers poll.
func (w *Writer) Appended() (next uint64, wake <-chan struct{}) {
	return w.sig.snapshot()
}

// EarliestIndex reports the base index of the oldest live segment in dir —
// the first record a tailing reader can still fetch. ok is false when the
// directory holds no segments.
func EarliestIndex(dir string) (base uint64, ok bool, err error) {
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		return 0, false, err
	}
	return segs[0].base, true, nil
}

// OpenWriter opens the log in dir for appending, creating the directory if
// needed. It scans the existing segments, truncates the torn tail of the
// last valid one, removes unreachable later segments, and positions the
// writer after the last valid record. start is the caller's low-water
// mark (the index of the first record it would ever need again — in
// practice the latest checkpoint's index): if the scanned log ends below
// start, the stale segments are deleted wholesale and a fresh segment
// starts exactly at start, keeping indices contiguous.
func OpenWriter(dir string, start uint64, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	// Scan forward from start to find the end of the contiguous valid
	// prefix, mirroring Replay: segments wholly below start are kept as-is
	// without scanning (a checkpoint covers them; TruncateBefore collects
	// them), and a segment whose base lies beyond the contiguous prefix (a
	// gap — its predecessors' tail records are missing) is unreachable and
	// removed along with everything after it.
	end := start
	keep := segs[:0]
	truncated := false
	for i := range segs {
		s := &segs[i]
		if i+1 < len(segs) && segs[i+1].base <= start {
			keep = append(keep, *s)
			continue
		}
		if !truncated && s.base > end {
			truncated = true // records [end, s.base) are missing
		}
		if truncated {
			if err := os.Remove(s.path); err != nil {
				return nil, err
			}
			continue
		}
		records, good, torn, err := scanSegment(s.path, nil)
		if err != nil {
			return nil, err
		}
		s.records, s.good, s.torn = records, good, torn
		if torn {
			if err := os.Truncate(s.path, good); err != nil {
				return nil, err
			}
			truncated = true
		}
		end = s.base + records
		keep = append(keep, *s)
	}
	segs = keep
	w := &Writer{dir: dir, opts: opts}
	if len(segs) == 0 || end < start {
		// Nothing (or nothing the caller can use) — start fresh at start.
		for _, s := range segs {
			if err := os.Remove(s.path); err != nil {
				return nil, err
			}
		}
		w.next, w.acked = start, start
		w.sig.next = start
		if err := w.openSegment(start, 0); err != nil {
			return nil, err
		}
		return w, nil
	}
	last := segs[len(segs)-1]
	for _, s := range segs {
		w.bases = append(w.bases, s.base)
	}
	w.next, w.acked = end, end
	w.sig.next = end
	if last.good < opts.SegmentSize {
		// Resume the last segment.
		f, err := opts.OpenFile(last.path)
		if err != nil {
			return nil, err
		}
		w.seg, w.base, w.size = f, last.base, last.good
		return w, nil
	}
	if err := w.openSegment(end, 0); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *Writer) openSegment(base uint64, size int64) error {
	f, err := w.opts.OpenFile(filepath.Join(w.dir, SegmentName(base)))
	if err != nil {
		return err
	}
	w.seg, w.base, w.size = f, base, size
	w.bases = append(w.bases, base)
	return nil
}

// NextIndex returns the global index the next appended record will get —
// equivalently, the number of records ever accepted into the log.
func (w *Writer) NextIndex() uint64 { return w.next }

// DurableIndex returns the index one past the last record known to have
// been fsynced. Records in [DurableIndex, NextIndex) are written but may
// not survive a power loss.
func (w *Writer) DurableIndex() uint64 { return w.acked }

// Append frames rec, writes it to the active segment (rotating first if it
// would overflow) and applies the fsync policy. It returns the record's
// global index. After a write or sync failure the writer is broken — the
// on-disk tail may be torn — and every subsequent call returns the same
// error; recovery is to reopen with OpenWriter, which truncates the tail.
func (w *Writer) Append(rec []byte) (uint64, error) {
	if w.broken != nil {
		return 0, w.broken
	}
	if len(rec) == 0 {
		return 0, errors.New("wal: empty record")
	}
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds max %d", len(rec), MaxRecordSize)
	}
	frame := make([]byte, headerSize+len(rec))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(rec, castagnoli))
	copy(frame[headerSize:], rec)
	if w.size > 0 && w.size+int64(len(frame)) > w.opts.SegmentSize {
		if err := w.rotate(); err != nil {
			w.broken = err
			return 0, err
		}
	}
	n, err := w.seg.Write(frame)
	w.size += int64(n)
	if err != nil {
		w.broken = fmt.Errorf("wal: append: %w", err)
		return 0, w.broken
	}
	idx := w.next
	w.next++
	w.unsync++
	w.opts.Metrics.appended()
	switch w.opts.Sync {
	case SyncAlways:
		if err := w.Sync(); err != nil {
			return 0, err
		}
	case SyncInterval:
		if w.unsync >= w.opts.SyncEvery {
			if err := w.Sync(); err != nil {
				return 0, err
			}
		}
	}
	w.sig.advance(w.next)
	return idx, nil
}

// rotate fsyncs and closes the active segment and opens the next one.
func (w *Writer) rotate() error {
	t := w.opts.Metrics.fsyncStart()
	start := w.fsyncClock()
	if err := w.seg.Sync(); err != nil {
		return fmt.Errorf("wal: sync on rotate: %w", err)
	}
	t.Stop()
	w.noteFsync(start)
	w.opts.Metrics.fsynced()
	w.acked = w.next
	if err := w.seg.Close(); err != nil {
		return fmt.Errorf("wal: close on rotate: %w", err)
	}
	return w.openSegment(w.next, 0)
}

// Sync fsyncs the active segment, making every appended record durable.
func (w *Writer) Sync() error {
	if w.broken != nil {
		return w.broken
	}
	t := w.opts.Metrics.fsyncStart()
	start := w.fsyncClock()
	if err := w.seg.Sync(); err != nil {
		w.broken = fmt.Errorf("wal: sync: %w", err)
		return w.broken
	}
	t.Stop()
	w.noteFsync(start)
	w.opts.Metrics.fsynced()
	w.acked = w.next
	w.unsync = 0
	return nil
}

// fsyncClock reads the wall clock when someone subscribed to fsync
// durations; the zero time otherwise, so the untraced path never touches
// the clock twice per sync.
func (w *Writer) fsyncClock() time.Time {
	if w.opts.OnFsync == nil {
		return time.Time{}
	}
	return time.Now()
}

func (w *Writer) noteFsync(start time.Time) {
	if w.opts.OnFsync == nil || start.IsZero() {
		return
	}
	w.opts.OnFsync(time.Since(start).Seconds())
}

// TruncateBefore removes segments every record of which has index < index
// — called after a checkpoint at index makes the prefix redundant. The
// active segment is never removed.
func (w *Writer) TruncateBefore(index uint64) error {
	kept := w.bases[:0]
	for i, base := range w.bases {
		// A segment's records span [base, nextBase); it is disposable when
		// the following segment starts at or below index.
		if i+1 < len(w.bases) && w.bases[i+1] <= index && base != w.base {
			if err := os.Remove(filepath.Join(w.dir, SegmentName(base))); err != nil && !os.IsNotExist(err) {
				return err
			}
			continue
		}
		kept = append(kept, base)
	}
	w.bases = kept
	return nil
}

// Close fsyncs (under SyncAlways/SyncInterval) and closes the active
// segment. Waiters parked on Appended are woken so tailing readers notice
// the log is done.
func (w *Writer) Close() error {
	defer w.sig.wakeAll()
	if w.broken != nil {
		return w.seg.Close()
	}
	if w.opts.Sync != SyncNever {
		if err := w.Sync(); err != nil {
			w.seg.Close()
			return err
		}
	}
	return w.seg.Close()
}
