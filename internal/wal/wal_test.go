package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func rec(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func appendN(t *testing.T, w *Writer, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		idx, err := w.Append(rec(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if idx != uint64(i) {
			t.Fatalf("append %d got index %d", i, idx)
		}
	}
}

func replayAll(t *testing.T, dir string, from uint64) (next uint64, got [][]byte) {
	t.Helper()
	next, err := Replay(dir, from, func(idx uint64, payload []byte) error {
		if idx != from+uint64(len(got)) {
			t.Fatalf("out-of-order index %d", idx)
		}
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return next, got
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	if w.NextIndex() != 10 || w.DurableIndex() != 10 {
		t.Fatalf("next=%d durable=%d", w.NextIndex(), w.DurableIndex())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	next, got := replayAll(t, dir, 0)
	if next != 10 || len(got) != 10 {
		t.Fatalf("next=%d records=%d", next, len(got))
	}
	for i, g := range got {
		if !bytes.Equal(g, rec(i)) {
			t.Fatalf("record %d = %q", i, g)
		}
	}
	// Replay from the middle.
	next, got = replayAll(t, dir, 7)
	if next != 10 || len(got) != 3 || !bytes.Equal(got[0], rec(7)) {
		t.Fatalf("partial replay next=%d n=%d", next, len(got))
	}
}

func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentSize: 64} // a few records per segment
	w, err := OpenWriter(dir, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 20)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	next, got := replayAll(t, dir, 0)
	if next != 20 || len(got) != 20 {
		t.Fatalf("next=%d records=%d", next, len(got))
	}
	// Reopen and continue: indices must continue contiguously.
	w, err = OpenWriter(dir, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if w.NextIndex() != 20 {
		t.Fatalf("reopened next=%d", w.NextIndex())
	}
	appendN(t, w, 20, 25)
	w.Close()
	next, _ = replayAll(t, dir, 0)
	if next != 25 {
		t.Fatalf("after reopen next=%d", next)
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	w.Close()
	// Tear the tail: chop 3 bytes off the last frame.
	path := filepath.Join(dir, SegmentName(0))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	next, got := replayAll(t, dir, 0)
	if next != 4 || len(got) != 4 {
		t.Fatalf("torn replay next=%d n=%d", next, len(got))
	}
	// Reopen: the torn frame must be truncated and appends continue at 4.
	w, err = OpenWriter(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.NextIndex() != 4 {
		t.Fatalf("reopened next=%d", w.NextIndex())
	}
	appendN(t, w, 4, 8)
	w.Close()
	next, got = replayAll(t, dir, 0)
	if next != 8 || len(got) != 8 {
		t.Fatalf("after heal next=%d n=%d", next, len(got))
	}
	for i, g := range got {
		if !bytes.Equal(g, rec(i)) {
			t.Fatalf("record %d = %q", i, g)
		}
	}
}

func TestCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 6)
	w.Close()
	// Flip a payload byte of record 3: header 8 + 11 payload per record.
	frame := int64(headerSize + len(rec(0)))
	path := filepath.Join(dir, SegmentName(0))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := 3*frame + headerSize + 2
	b := []byte{0}
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
	f.Close()
	next, got := replayAll(t, dir, 0)
	if next != 3 || len(got) != 3 {
		t.Fatalf("corrupt replay next=%d n=%d", next, len(got))
	}
}

func TestZeroFilledTailIsTorn(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 3)
	w.Close()
	f, err := os.OpenFile(filepath.Join(dir, SegmentName(0)), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, 64)) // simulate zero preallocation
	f.Close()
	next, _ := replayAll(t, dir, 0)
	if next != 3 {
		t.Fatalf("next=%d, want 3", next)
	}
}

func TestStartAboveLogDiscardsStaleSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 4)
	w.Close()
	// A checkpoint advanced past the whole log (e.g. its tail was torn
	// away after the checkpoint): the writer must restart at start.
	w, err = OpenWriter(dir, 9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.NextIndex() != 9 {
		t.Fatalf("next=%d, want 9", w.NextIndex())
	}
	if _, err := w.Append(rec(9)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	next, got := replayAll(t, dir, 9)
	if next != 10 || len(got) != 1 || !bytes.Equal(got[0], rec(9)) {
		t.Fatalf("next=%d n=%d", next, len(got))
	}
}

func TestTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentSize: 64}
	w, err := OpenWriter(dir, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 30)
	segsBefore, _ := listSegments(dir)
	if len(segsBefore) < 4 {
		t.Fatalf("want several segments, got %d", len(segsBefore))
	}
	if err := w.TruncateBefore(20); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := listSegments(dir)
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("no segments removed: %d -> %d", len(segsBefore), len(segsAfter))
	}
	// Everything from 20 on must still replay.
	next, got := replayAll(t, dir, 20)
	if next != 30 || len(got) != 10 {
		t.Fatalf("next=%d n=%d", next, len(got))
	}
	w.Close()
}

func TestSyncPolicies(t *testing.T) {
	t.Run("interval", func(t *testing.T) {
		dir := t.TempDir()
		w, err := OpenWriter(dir, 0, Options{Sync: SyncInterval, SyncEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, w, 0, 6)
		if w.DurableIndex() != 4 {
			t.Fatalf("durable=%d, want 4 (one interval)", w.DurableIndex())
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if w.DurableIndex() != 6 {
			t.Fatalf("durable=%d after Sync", w.DurableIndex())
		}
		w.Close()
	})
	t.Run("never", func(t *testing.T) {
		dir := t.TempDir()
		w, err := OpenWriter(dir, 0, Options{Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, w, 0, 6)
		if w.DurableIndex() != 0 {
			t.Fatalf("durable=%d, want 0", w.DurableIndex())
		}
		w.Close()
	})
}

func TestInjectedWriteErrorBreaksWriter(t *testing.T) {
	dir := t.TempDir()
	fault := NewFault()
	fault.FailWriteAt(3)
	w, err := OpenWriter(dir, 0, Options{OpenFile: fault.Open})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 2)
	if _, err := w.Append(rec(2)); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("err = %v, want injected write error", err)
	}
	// Writer is sticky-broken.
	if _, err := w.Append(rec(3)); err == nil {
		t.Fatal("broken writer accepted a record")
	}
	w.Close()
	next, _ := replayAll(t, dir, 0)
	if next != 2 {
		t.Fatalf("next=%d, want 2", next)
	}
}

func TestInjectedSyncErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	fault := NewFault()
	fault.FailSyncs(true)
	w, err := OpenWriter(dir, 0, Options{OpenFile: fault.Open})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(rec(0)); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("err = %v, want injected sync error", err)
	}
	if w.DurableIndex() != 0 {
		t.Fatalf("durable=%d after failed sync", w.DurableIndex())
	}
	w.Close()
}

// TestCrashAtEveryByte drives the writer into an injected crash at every
// byte offset of a small log and checks the recovered prefix is exactly
// the records whose frames fit below the crash point.
func TestCrashAtEveryByte(t *testing.T) {
	const records = 8
	frame := int64(headerSize + len(rec(0)))
	total := frame * records
	for crash := int64(0); crash <= total; crash++ {
		dir := t.TempDir()
		fault := NewFault()
		fault.CrashAt(crash)
		w, err := OpenWriter(dir, 0, Options{OpenFile: fault.Open, SegmentSize: 3 * frame})
		if err != nil {
			t.Fatal(err)
		}
		acked := 0
		for i := 0; i < records; i++ {
			if _, err := w.Append(rec(i)); err != nil {
				break
			}
			acked++
		}
		next, got := replayAll(t, dir, 0)
		// Frames land contiguously, so the survivors are exactly the
		// frames wholly below the crash byte.
		want := crash / frame
		if want > records {
			want = records
		}
		if next != uint64(want) || int64(len(got)) != want {
			t.Fatalf("crash@%d: recovered %d records (next=%d), want %d", crash, len(got), next, want)
		}
		if int64(acked) > want {
			t.Fatalf("crash@%d: %d acked but only %d recovered", crash, acked, want)
		}
		for i, g := range got {
			if !bytes.Equal(g, rec(i)) {
				t.Fatalf("crash@%d: record %d = %q", crash, i, g)
			}
		}
		w.Close()
	}
}

func TestAppendRejectsBadRecords(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if _, err := w.Append(make([]byte, MaxRecordSize+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

// FuzzReplay feeds arbitrary bytes as a segment file: Replay must never
// panic and must only ever deliver frames whose checksum matches.
func FuzzReplay(f *testing.F) {
	valid := make([]byte, 0, 64)
	for i := 0; i < 3; i++ {
		p := rec(i)
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crcOf(p))
		valid = append(valid, hdr[:]...)
		valid = append(valid, p...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, SegmentName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		prev := uint64(0)
		_, err := Replay(dir, 0, func(idx uint64, payload []byte) error {
			if idx != prev {
				t.Fatalf("index jumped to %d", idx)
			}
			prev++
			return nil
		})
		if err != nil {
			t.Fatalf("replay errored on arbitrary bytes: %v", err)
		}
	})
}

func crcOf(p []byte) uint32 {
	return crc32.Checksum(p, castagnoli)
}

// TestOpenWriterKeepsTailAtLowWater: reopening with start anywhere at or
// below the log's end must preserve every record on disk — start is a
// low-water mark, not a resume position, and the tail [start, end) is
// exactly what the next recovery still needs.
func TestOpenWriterKeepsTailAtLowWater(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for _, start := range []uint64{0, 3, 10} { // below, inside, exactly at the end
		w, err := OpenWriter(dir, start, Options{SegmentSize: 64})
		if err != nil {
			t.Fatalf("start %d: %v", start, err)
		}
		if w.NextIndex() != 10 {
			t.Fatalf("start %d: next = %d, want 10", start, w.NextIndex())
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if next, got := replayAll(t, dir, 0); next != 10 || len(got) != 10 {
			t.Fatalf("start %d: %d records survive reopen, next %d", start, len(got), next)
		}
	}
}

// TestLeadingGapStopsReplay: when the segment holding the requested
// position is gone (and the log therefore has no contiguous continuation
// from it), Replay must deliver nothing rather than silently skip the
// missing indices, and OpenWriter must discard the unreachable remainder.
func TestLeadingGapStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, 0, Options{SegmentSize: 64}) // ~3 records per segment
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 12)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	if err := os.Remove(segs[0].path); err != nil {
		t.Fatal(err)
	}
	next, got := replayAll(t, dir, 0)
	if next != 0 || len(got) != 0 {
		t.Fatalf("replay across a leading gap delivered %d records, next %d", len(got), next)
	}
	// Reopening at the missing position discards the unreachable tail and
	// starts fresh there.
	w, err = OpenWriter(dir, 0, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if w.NextIndex() != 0 {
		t.Fatalf("next = %d after reopening a gapped log at 0", w.NextIndex())
	}
	appendN(t, w, 0, 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if next, got := replayAll(t, dir, 0); next != 2 || len(got) != 2 {
		t.Fatalf("fresh log after gap: %d records, next %d", len(got), next)
	}
}
