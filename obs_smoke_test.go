package anc_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"anc"
	"anc/internal/obs"
	"anc/internal/serve"
	"anc/internal/serve/client"
)

// TestObsSmoke stands up the full instrumented stack — WAL-backed durable
// network behind the TCP server with the metrics listener on — drives
// ingest, queries and a checkpoint through it, and scrapes /metrics like
// a real Prometheus would. One registry spans every layer, so the scrape
// must surface series from serve, wal, pyramid and core alike.
func TestObsSmoke(t *testing.T) {
	var edges [][2]int
	for base := 0; base <= 5; base += 5 {
		for u := base; u < base+5; u++ {
			for v := u + 1; v < base+5; v++ {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	edges = append(edges, [2]int{4, 5})
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.2
	cfg.Mu = 3
	net, err := anc.NewNetwork(10, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	d, err := anc.NewDurable(net, t.TempDir(), anc.DurableConfig{Obs: reg, CheckpointEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(d, serve.Config{Obs: reg, MetricsAddr: "127.0.0.1:0", RequestTimeout: 30 * time.Second})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	c, err := client.Dial(srv.Addr().String(), client.WithTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ts := 0.0
	for b := 0; b < 4; b++ {
		batch := make([]anc.Activation, 0, 30)
		for j := 0; j < 30; j++ {
			e := edges[(b*30+j)*7%len(edges)]
			ts += 0.5
			batch = append(batch, anc.Activation{U: e[0], V: e[1], T: ts})
		}
		if err := c.ActivateBatch(ctx, batch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SmallestClusterOf(ctx, 0); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	// One series per instrumented layer: the server, the WAL, the pyramid
	// index and the core update loop.
	for _, series := range []string{
		"anc_serve_requests_total",
		"anc_wal_fsync_seconds",
		"anc_pyramid_update_seconds",
		"anc_core_rescales_total",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	// The acknowledged batches were fsynced and the CheckpointEvery=50
	// threshold fired at least once mid-stream.
	snap := reg.Snapshot()
	for _, k := range []string{
		"anc_wal_fsyncs_total",
		"anc_wal_checkpoint_seconds_count",
		"anc_core_activations_total",
		`anc_serve_requests_total{op="activate-batch"}`,
	} {
		if snap[k] <= 0 {
			t.Errorf("%s = %g, want > 0", k, snap[k])
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
}
