package anc

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"anc/internal/obs/trace"
	"anc/internal/wal"
)

// This file is the durable layer's replication surface: the hooks a
// primary needs to ship its committed WAL frames (Dir, FrameSignal,
// NewestCheckpoint) and the hooks a follower needs to replay them
// byte-identically (ApplyFrame, RestoreDurable). Replication rides
// entirely on the existing durability machinery — a follower is just a
// DurableNetwork whose frames arrive over the wire instead of from local
// Activate calls, so crash recovery, checkpoint retention and the
// determinism guarantee (identical frames ⇒ byte-identical Save) all
// carry over unchanged.

// Dir returns the directory holding this network's WAL segments and
// checkpoints. A primary's replication stream is served straight from
// these files: the newest on-disk checkpoint bootstraps a lagging
// follower and the segment tail is read with wal.Replay — never through
// the in-memory network, so streaming takes no network lock.
func (d *DurableNetwork) Dir() string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.dir
}

// FrameSignal returns the WAL append cursor — the index one past the last
// logged frame — plus a channel closed on the next append (or on Close).
// It is the tailing hook: a replication sender parks on wake instead of
// polling the directory.
func (d *DurableNetwork) FrameSignal() (next uint64, wake <-chan struct{}) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.w.Appended()
}

// NewestCheckpoint reports the newest on-disk checkpoint: the WAL index
// it covers and its path. Serving the file (rather than Save on the live
// network) keeps bootstrap reads off the network lock and ships exactly
// the bytes recovery would load. ok is false when dir holds no
// checkpoint — impossible for a live DurableNetwork, which writes
// checkpoint-0 before opening its log.
func (d *DurableNetwork) NewestCheckpoint() (index uint64, path string, ok bool, err error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	cps, err := listCheckpoints(d.dir)
	if err != nil || len(cps) == 0 {
		return 0, "", false, err
	}
	cp := cps[len(cps)-1]
	return cp.index, cp.path, true, nil
}

// decodeFrameActs decodes one WAL frame payload into the activations it
// carries: a single 16-byte record (per-op Activate) or n×16 bytes (a
// group-committed batch). It is the one decoder shared by Recover and
// ApplyFrame, so local replay and wire replay cannot drift.
func decodeFrameActs(rec []byte) ([]Activation, error) {
	if len(rec) == 0 || len(rec)%activationRecordSize != 0 {
		return nil, fmt.Errorf("anc: frame of %d bytes", len(rec))
	}
	acts := make([]Activation, len(rec)/activationRecordSize)
	for i := range acts {
		u, v, t, err := decodeActivation(rec[i*activationRecordSize : (i+1)*activationRecordSize])
		if err != nil {
			return nil, err
		}
		acts[i] = Activation{U: u, V: v, T: t}
	}
	return acts, nil
}

// ApplyFrame ingests one replicated WAL frame: the follower's write path.
// The raw payload is appended to the local WAL byte-for-byte and then
// applied through the same pipeline Recover uses (a 16-byte payload via
// Activate, larger via ActivateBatch), so a follower's log and state are
// exactly what a local run of the same history would have produced —
// which is what makes convergence checkable by comparing Save bytes.
//
// index must equal the local log's next index; anything else is a gap or
// a duplicate and is rejected with ErrFrameGap wrapping detail, leaving
// the state untouched. Duplicates are the caller's business to skip
// (replication sessions may legitimately replay an overlap after a
// reconnect).
//anclint:ignore lockdiscipline pure delegation with a zero span; ApplyFrameTraced takes the lock itself
func (d *DurableNetwork) ApplyFrame(index uint64, payload []byte) error {
	return d.ApplyFrameTraced(index, payload, trace.SpanHandle{}) //anclint:ignore lockdiscipline no lock is held here; the traced variant acquires it
}

// ApplyFrameTraced is ApplyFrame under a follower-side span (minted from
// the trace ID the primary shipped with the frame), recording the local
// WAL append and the in-memory apply as children just like the primary's
// traced ingest path does. A zero handle degrades to plain ApplyFrame.
func (d *DurableNetwork) ApplyFrameTraced(index uint64, payload []byte, sp trace.SpanHandle) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if next := d.w.NextIndex(); index != next {
		return fmt.Errorf("%w: frame %d, log at %d", ErrFrameGap, index, next)
	}
	acts, err := decodeFrameActs(payload)
	if err != nil {
		return err
	}
	// Log-then-apply, exactly like Activate/ActivateBatch: the durable
	// history stays a superset of the applied one.
	wsp := sp.StartChild("wal.append")
	d.fsyncAccum = 0
	if _, err := d.w.Append(payload); err != nil {
		wsp.Fail()
		wsp.End()
		return fmt.Errorf("anc: wal: %w", err)
	}
	if wsp.Active() && d.fsyncAccum > 0 {
		wsp.Leaf("wal.fsync", time.Duration(d.fsyncAccum*float64(time.Second)))
	}
	wsp.End()
	csp := sp.StartChild("core.apply")
	if len(acts) == 1 {
		err = d.net.Activate(acts[0].U, acts[0].V, acts[0].T)
	} else {
		err = d.net.ActivateBatchTraced(acts, csp)
	}
	if err != nil {
		csp.Fail()
		csp.End()
		return err
	}
	csp.End()
	d.met.batchLogged(len(acts))
	d.acts += uint64(len(acts))
	d.sinceCheckpoint += len(acts)
	if d.cfg.CheckpointEvery > 0 && d.sinceCheckpoint >= d.cfg.CheckpointEvery {
		return d.checkpointLocked()
	}
	return nil
}

// ErrFrameGap is wrapped by ApplyFrame when the offered frame index does
// not line up with the local log — the follower must either skip (stale
// duplicate) or resubscribe (gap).
var ErrFrameGap = errors.New("anc: replicated frame out of sequence")

// RestoreDurable builds a durable network in dir from a checkpoint
// snapshot shipped over the wire: the follower bootstrap path when its
// local log is too far behind the primary's retained segments. Any
// existing durable state in dir is discarded first (it is strictly older
// than the snapshot), the snapshot is persisted as checkpoint-<index>.snap
// via the same temp/fsync/rename dance writeCheckpoint uses, and the WAL
// reopens at exactly index so the next replicated frame lines up.
func RestoreDurable(snapshot []byte, index uint64, dir string, cfg DurableConfig) (*DurableNetwork, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".wal") || strings.HasSuffix(name, ".snap") ||
			strings.HasSuffix(name, ".corrupt") || name == "checkpoint.tmp" {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, err
			}
		}
	}
	tmp := filepath.Join(dir, "checkpoint.tmp")
	if err := os.WriteFile(tmp, snapshot, 0o644); err != nil {
		return nil, err
	}
	f, err := os.Open(tmp)
	if err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	f.Close() //anclint:ignore droppederr read-only handle reopened for fsync; a close error cannot lose data
	if err := os.Rename(tmp, filepath.Join(dir, checkpointName(index))); err != nil {
		return nil, err
	}
	syncDir(dir)
	net, err := loadCheckpoint(filepath.Join(dir, checkpointName(index)))
	if err != nil {
		return nil, err
	}
	net.Instrument(cfg.Obs)
	var d *DurableNetwork // the fsync hook captures it; nil until construction below
	opts := cfg.walOptions()
	opts.OnFsync = func(seconds float64) {
		if d != nil {
			d.noteFsync(seconds)
		}
	}
	w, err := wal.OpenWriter(dir, index, opts)
	if err != nil {
		return nil, err
	}
	d = &DurableNetwork{net: net, w: w, dir: dir, cfg: cfg, met: newDurableMetrics(cfg.Obs),
		cache: net.clusterCache(), rank: net.rankCache()}
	return d, nil
}
