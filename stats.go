package anc

// Stats is an aggregate read-only snapshot of a network's shape and
// ingest progress — the payload of the serving layer's health endpoint.
// It is returned by ConcurrentNetwork.Stats and DurableNetwork.Stats so
// health checks never need Unwrap (and therefore never bypass the lock).
type Stats struct {
	// Nodes and Edges are the relation-graph dimensions.
	Nodes, Edges int
	// Levels is the number of granularity levels, SqrtLevel the Θ(√n)
	// reporting level.
	Levels, SqrtLevel int
	// Activations counts the activations applied through this wrapper;
	// for a recovered DurableNetwork it includes the WAL tail replayed by
	// Recover (activations folded into the checkpoint predate the counter).
	Activations uint64
	// Now is the network time: the largest activation timestamp seen.
	Now float64
	// WatcherDrops is the cumulative count of cluster events dropped on
	// watcher buffer overflow — never reset by Drain, so loss is observable
	// without consuming events. Zero when Watch was never called.
	WatcherDrops uint64
	// CacheHits, CacheMisses and CacheInvalidations are the materialized
	// clustering cache's cumulative counters (DESIGN.md §15). All zero when
	// the cache was never enabled.
	CacheHits, CacheMisses, CacheInvalidations uint64
	// EvolutionDrops is the cumulative count of cluster-evolution events
	// overwritten in the analytics ring before being read (DESIGN.md §16)
	// — the analytics twin of WatcherDrops. Zero when analytics was never
	// enabled.
	EvolutionDrops uint64
}
