package anc_test

import (
	"math/rand"
	"testing"

	"anc"
	"anc/internal/core"
	"anc/internal/gen"
	"anc/internal/graph"
	"anc/internal/similarity"
)

// TestStressLongStreamKeepsIndexExact streams tens of thousands of
// activations through ANCO on a 2,000-node graph and then certifies the
// full shortest-path optimality of every partition — the end-to-end
// soundness guarantee behind every efficiency claim. Skipped with -short.
func TestStressLongStreamKeepsIndexExact(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(99))
	pl := gen.Community(2000, 14000, 50, 0.2, rng)
	opts := core.DefaultOptions()
	opts.Similarity = similarity.Config{Epsilon: 0.3, Mu: 3, SMin: 1e-9, SMax: 1e12}
	opts.Rep = 3
	opts.Seed = 99
	opts.RescaleEvery = 1024
	nw, err := core.New(pl.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for i := 0; i < 20000; i++ {
		now += rng.Float64() * 0.01
		nw.Activate(graph.EdgeID(rng.Intn(pl.Graph.M())), now)
	}
	if msg := nw.Index().Validate(); msg != "" {
		t.Fatalf("after 20k activations: %s", msg)
	}
}

// TestStressChurnTracksCommunityMerge verifies the system-level behaviour
// on a drifting workload: after two communities start interacting heavily
// (gen.ChurnStream), the index merges them at some granularity while the
// structure-only phase kept them apart.
func TestStressChurnTracksCommunityMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(5))
	pl := gen.Community(400, 2800, 10, 0.1, rng)
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.3
	cfg.Mu = 3
	cfg.Lambda = 0.2
	net, err := anc.FromGraph(pl.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Representatives of the merging communities.
	var a, b int = -1, -1
	for v, c := range pl.Truth {
		if c == 0 && a < 0 {
			a = v
		}
		if c == 1 && b < 0 {
			b = v
		}
	}
	if a < 0 || b < 0 {
		t.Skip("communities 0/1 empty")
	}
	coLevel := func() int {
		// Number of levels at which a and b share a cluster.
		n := 0
		for l := 1; l <= net.Levels(); l++ {
			mine := net.ClusterOf(a, l)
			for _, m := range mine {
				if m == b {
					n++
					break
				}
			}
		}
		return n
	}
	stream := gen.ChurnStream(pl.Graph, pl.Truth, 60, 0.08, [2]int32{0, 1}, rng)
	half := 0
	for i, act := range stream {
		if act.T > 30 {
			half = i
			break
		}
	}
	for _, act := range stream[:half] {
		u, v := pl.Graph.Endpoints(act.Edge)
		if err := net.Activate(int(u), int(v), act.T); err != nil {
			t.Fatal(err)
		}
	}
	before := coLevel()
	for _, act := range stream[half:] {
		u, v := pl.Graph.Endpoints(act.Edge)
		if err := net.Activate(int(u), int(v), act.T); err != nil {
			t.Fatal(err)
		}
	}
	after := coLevel()
	if after <= before {
		t.Fatalf("churn did not pull communities together: co-levels %d -> %d", before, after)
	}
}
