package anc_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"anc"
	"anc/internal/obs/trace"
	"anc/internal/serve"
	"anc/internal/serve/client"
)

// spanOps flattens a span tree into the set of operation names it
// contains.
func spanOps(v *trace.SpanView, into map[string]bool) {
	if v == nil {
		return
	}
	into[v.Op] = true
	for _, c := range v.Children {
		spanOps(c, into)
	}
}

// TestTraceSmoke is the tracing subsystem's acceptance loop (DESIGN.md
// §17): a traced client sends one batch over TCP and the server's flight
// recorder must hold a single trace — under the client-minted trace ID —
// that stitches every ingest stage: admission, writer-queue wait, WAL
// append with the fsync inside it, core apply, pyramid repair, cache
// invalidation and the reply write. The same trace must then come back
// over the wire through the traces op (text and JSON), and an untraced
// connection against the same server must keep working unchanged.
func TestTraceSmoke(t *testing.T) {
	var edges [][2]int
	for base := 0; base <= 5; base += 5 {
		for u := base; u < base+5; u++ {
			for v := u + 1; v < base+5; v++ {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	edges = append(edges, [2]int{4, 5})
	cfg := anc.DefaultConfig()
	cfg.Epsilon = 0.2
	cfg.Mu = 3
	net, err := anc.NewNetwork(10, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := anc.NewDurable(net, t.TempDir(), anc.DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// SampleEvery is huge so the server head-samples nothing of its own:
	// every recorded trace below must have arrived through a wire context.
	serverTracer := trace.New(trace.Config{Capacity: 64, SampleEvery: 1 << 20})
	srv := serve.New(d, serve.Config{Tracer: serverTracer, RequestTimeout: 30 * time.Second})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	ctx := context.Background()

	// The traced client samples every call, so the one batch below is
	// guaranteed a client-side root span whose context rides the request.
	clientTracer := trace.New(trace.Config{Capacity: 16, SampleEvery: 1})
	c, err := client.Dial(addr, client.WithTimeout(30*time.Second), client.WithTracer(clientTracer))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]anc.Activation, 0, 30)
	ts := 0.0
	for j := 0; j < 30; j++ {
		e := edges[j*7%len(edges)]
		ts += 0.5
		batch = append(batch, anc.Activation{U: e[0], V: e[1], T: ts})
	}
	if err := c.ActivateBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}

	// The client's recorder names the trace the server must have joined.
	var id uint64
	for _, v := range clientTracer.Traces() {
		if v.Root != nil && v.Root.Op == "client.activate-batch" {
			if id, err = trace.ParseID(v.ID); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if id == 0 {
		t.Fatal("client recorded no activate-batch trace")
	}

	// The server's root span ends just after the reply is flushed, so the
	// client can observe its response a beat before the trace files.
	var sv *trace.TraceView
	for deadline := time.Now().Add(5 * time.Second); sv == nil; {
		if sv = serverTracer.Find(id); sv != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server flight recorder never filed trace %s", trace.FormatID(id))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sv.Remote {
		t.Error("server trace not marked remote despite the wire-carried context")
	}
	if sv.Root == nil || sv.Root.Op != "serve.activate-batch" {
		t.Fatalf("server trace root = %+v, want serve.activate-batch", sv.Root)
	}
	ops := map[string]bool{}
	spanOps(sv.Root, ops)
	for _, stage := range []string{
		"queue.wait", "wal.append", "wal.fsync", "core.apply",
		"pyramid.repair", "core.invalidate", "reply",
	} {
		if !ops[stage] {
			t.Errorf("stitched trace missing the %s stage (have %v)", stage, ops)
		}
	}

	// The same trace must round-trip over the wire: the text rendering by
	// ID, and the JSON index listing it.
	text, err := c.Traces(ctx, id, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{trace.FormatID(id), "wal.append", "pyramid.repair"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("traces op text missing %q:\n%s", want, text)
		}
	}
	raw, err := c.Traces(ctx, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	var index struct {
		Traces []*trace.TraceView `json:"traces"`
	}
	if err := json.Unmarshal(raw, &index); err != nil {
		t.Fatalf("traces op JSON: %v\n%s", err, raw)
	}
	found := false
	for _, v := range index.Traces {
		found = found || v.ID == trace.FormatID(id)
	}
	if !found {
		t.Errorf("traces op index does not list %s", trace.FormatID(id))
	}

	// An untraced connection against the same server must be unaffected:
	// same ops, no trailer, no new server-side traces.
	finished, _ := serverTracer.Stats()
	plain, err := client.Dial(addr, client.WithTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.ActivateBatch(ctx, []anc.Activation{{U: 0, V: 1, T: ts + 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	if now, _ := serverTracer.Stats(); now != finished {
		t.Errorf("untraced requests filed %d new traces, want 0", now-finished)
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
}
